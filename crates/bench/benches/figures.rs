//! End-to-end figure benchmarks: every paper table & figure regenerated at
//! bench scale on each `cargo bench` run. Timing is secondary here — the
//! point is that the full experiment pipeline for each figure runs and its
//! qualitative shape is asserted (a regression in who-beats-whom fails the
//! bench).

use criterion::{criterion_group, criterion_main, Criterion};
use soc_bench::{fig4, fig5, fig8, table3, Scale};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_shape", |b| {
        b.iter(|| {
            let out = fig4(Scale::bench(), 1);
            // λ = 0.84: SID-CAN beats Newscast (scarce resources need the
            // directed search).
            let (_, hi) = (&out[0].0, &out[0].1);
            let sid = hi.iter().find(|r| r.label == "SID-CAN").unwrap();
            let news = hi.iter().find(|r| r.label == "Newscast").unwrap();
            assert!(
                sid.t_ratio > news.t_ratio,
                "fig4(a) inverted: SID {} vs Newscast {}",
                sid.t_ratio,
                news.t_ratio
            );
            black_box(out)
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_shape", |b| {
        b.iter(|| {
            let reports = fig5(Scale::bench(), 1.0, 1);
            // PID variants must beat Newscast on matching at λ = 1.
            let hid = reports.iter().find(|r| r.label == "HID-CAN").unwrap();
            let news = reports.iter().find(|r| r.label == "Newscast").unwrap();
            assert!(
                hid.f_ratio < news.f_ratio,
                "fig5(b) inverted: HID {} vs Newscast {}",
                hid.f_ratio,
                news.f_ratio
            );
            black_box(reports)
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_shape", |b| {
        b.iter(|| {
            let reports = fig5(Scale::bench(), 0.25, 1);
            let hid = reports.iter().find(|r| r.label == "HID-CAN").unwrap();
            // Fig. 7(b): HID-CAN almost never fails at λ = 0.25.
            assert!(
                hid.f_ratio < 0.05,
                "fig7(b): HID F-Ratio should be ≈0, got {}",
                hid.f_ratio
            );
            black_box(reports)
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_shape", |b| {
        b.iter(|| {
            let rows = fig8(Scale::bench(), 1);
            let t0 = rows[0].1.t_ratio;
            let t50 = rows[2].1.t_ratio;
            assert!(
                t50 > 0.4 * t0,
                "fig8: 50% churn collapsed throughput ({t50} vs static {t0})"
            );
            black_box(rows)
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_shape", |b| {
        b.iter(|| {
            let rows = table3(Scale::bench(), 1);
            // Per-node message cost grows sublinearly with n.
            let first = rows.first().unwrap().msg_per_node;
            let last = rows.last().unwrap().msg_per_node;
            let n_ratio = *Scale::bench().table3_nodes.last().unwrap() as f64
                / Scale::bench().table3_nodes[0] as f64;
            assert!(
                last / first.max(1.0) < n_ratio,
                "table3: per-node cost not sublinear ({first} → {last})"
            );
            black_box(rows)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4, bench_fig5, bench_fig7, bench_fig8, bench_table3
}
criterion_main!(benches);
