//! Table III at near-paper scale: full workload parameters, 12 simulated
//! hours (metrics are flat after hour ~6; see the hourly series), n up to
//! 6000 — sized to finish within a CI-scale time budget. `repro table3
//! --scale full` runs the complete 24 h / 12000-node sweep.
use soc_sim::{ProtocolChoice, Scenario};

fn main() {
    println!("scale\tthroughput_ratio\tfailed_task_ratio\tfairness_index\tmsg_delivery_cost");
    for n in [2000usize, 4000, 6000] {
        let r = Scenario::paper(ProtocolChoice::Hid)
            .nodes(n)
            .lambda(0.5)
            .hours(12)
            .seed(1)
            .run();
        println!(
            "{n}\t{:.3}\t{:.1}%\t{:.3}\t{:.0}",
            r.t_ratio,
            r.f_ratio * 100.0,
            r.fairness,
            r.msg_per_node
        );
    }
}
