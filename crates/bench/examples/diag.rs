//! Calibration diagnostics: oracle match rates and ratio/traffic summaries.
use soc_sim::{ProtocolChoice, Scenario};

fn main() {
    for lambda in [1.0, 0.5, 0.25] {
        println!("==== lambda {lambda} ====");
        for p in [
            ProtocolChoice::Hid,
            ProtocolChoice::Sid,
            ProtocolChoice::Newscast,
            ProtocolChoice::Khdn,
        ] {
            let mut sc = Scenario::paper(p)
                .nodes(300)
                .hours(6)
                .seed(1)
                .lambda(lambda);
            sc.mean_arrival_s = 1200.0;
            sc.mean_duration_s = 1200.0;
            sc.oracle = true;
            let r = sc.run();
            let orc = r.oracle_matchable.unwrap_or(0) as f64 / r.generated.max(1) as f64;
            let rec = r
                .oracle_record_matchable
                .map(|v| v as f64 / r.generated.max(1) as f64);
            println!(
                "{}  oracle {:.2} (mean {:.1}) rec-oracle {} match {:.2} eff {:.2} wall {}ms",
                r.summary(),
                orc,
                r.oracle_mean_matching.unwrap_or(0.0),
                rec.map(|v| format!("{v:.2}")).unwrap_or("  - ".into()),
                1.0 - r.f_ratio,
                r.mean_efficiency,
                r.wall_ms
            );
            if !r.diag.is_empty() {
                println!("    {}", r.diag);
            }
        }
    }
}
