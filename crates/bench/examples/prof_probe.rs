//! Profile probe: per-phase attribution of one smoke-scale HID run,
//! honouring `SOC_SIM_QUEUE` / `SOC_SIM_EXEC` from the environment.
fn main() {
    match soc_bench::perf::profile_attribution(soc_bench::Scale::smoke(), 1) {
        Some(t) => println!("{t}"),
        None => eprintln!("no profile"),
    }
}
