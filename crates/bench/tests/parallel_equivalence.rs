//! The parallel sweep engine must be a pure scheduling change: reports from
//! the fan-out path are **bitwise identical** to a plain serial loop over
//! the same cells (each `Scenario::run` owns its RNG streams, so cell
//! results cannot depend on execution order — this pins it).
//!
//! The always-on tests run at the fast `bench` scale so tier-1 stays quick;
//! `smoke_scale_fig4_and_table3_identical` repeats the check at the paper's
//! smoke scale and is `#[ignore]`d by default (CI's cron runs it in
//! release).

use soc_bench::{fig4, sweep, table3, Scale};
use soc_sim::{ProtocolChoice, RunReport};

/// Serial reference for `fig4`: the exact loop the figure ran before the
/// sweep engine existed.
fn fig4_serial(scale: Scale, seed: u64) -> Vec<(f64, Vec<RunReport>)> {
    let protos = [
        ProtocolChoice::Newscast,
        ProtocolChoice::Sid,
        ProtocolChoice::Khdn,
    ];
    [0.84, 0.25]
        .into_iter()
        .map(|lambda| {
            let reports = protos
                .iter()
                .map(|&p| scale.scenario(p).lambda(lambda).seed(seed).run())
                .collect();
            (lambda, reports)
        })
        .collect()
}

/// Serial reference for `table3`.
fn table3_serial(scale: Scale, seed: u64) -> Vec<RunReport> {
    scale
        .table3_nodes
        .iter()
        .map(|&n| {
            scale
                .scenario(ProtocolChoice::Hid)
                .nodes(n)
                .lambda(0.5)
                .seed(seed)
                .run()
        })
        .collect()
}

fn assert_identical(serial: &[RunReport], parallel: &[RunReport], what: &str) {
    assert_eq!(serial.len(), parallel.len(), "{what}: row count");
    for (s, p) in serial.iter().zip(parallel) {
        assert_eq!(
            s.fingerprint(),
            p.fingerprint(),
            "{what}: {} diverged between serial and parallel",
            s.scenario
        );
    }
}

#[test]
fn fig4_parallel_is_bitwise_identical() {
    // with_thread_override forces the genuinely-parallel work-queue path
    // even on a 1-core host, without touching process-global env.
    let scale = Scale::bench();
    let serial = fig4_serial(scale, 7);
    let parallel = sweep::with_thread_override(4, || fig4(scale, 7));
    assert_eq!(serial.len(), parallel.len());
    for ((ls, s), (lp, p)) in serial.iter().zip(&parallel) {
        assert_eq!(ls, lp, "lambda order");
        assert_identical(s, p, "fig4");
    }
}

#[test]
fn table3_parallel_is_bitwise_identical() {
    let scale = Scale::bench();
    let serial = table3_serial(scale, 7);
    let parallel = sweep::with_thread_override(4, || table3(scale, 7));
    assert_identical(&serial, &parallel, "table3");
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Scheduling nondeterminism must never leak: two parallel executions
    // of the same sweep fingerprint identically.
    let scale = Scale::bench();
    let a = sweep::with_thread_override(3, || table3(scale, 11));
    let b = sweep::with_thread_override(3, || table3(scale, 11));
    assert_identical(&a, &b, "table3 repeat");
}

/// The acceptance-bar check at the paper's smoke scale (minutes in debug,
/// seconds in release) — run via
/// `cargo test --release -p soc-bench --test parallel_equivalence -- --ignored`.
#[test]
#[ignore = "smoke scale: run in release via CI cron or manually"]
fn smoke_scale_fig4_and_table3_identical() {
    let scale = Scale::smoke();
    let serial = table3_serial(scale, 1);
    let parallel = sweep::with_thread_override(4, || table3(scale, 1));
    assert_identical(&serial, &parallel, "table3@smoke");

    let serial = fig4_serial(scale, 1);
    let parallel = sweep::with_thread_override(4, || fig4(scale, 1));
    for ((ls, s), (lp, p)) in serial.iter().zip(&parallel) {
        assert_eq!(ls, lp);
        assert_identical(s, p, "fig4@smoke");
    }
}
