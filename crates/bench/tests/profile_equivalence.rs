//! The phase profiler must be **observation-only**: whole-run reports
//! under `SOC_PROFILE=on` are bitwise identical to `SOC_PROFILE=off` (same
//! events, same message counts, same RNG draws — the profiler reads clocks
//! and bumps counters, nothing else). This pins it across the fig4, table3
//! and oracle-diag grids, covering every instrumented path: the dispatch
//! loop, routing and cache-probe spans in both PID-CAN and KHDN, PSM
//! prediction, the fault/latency spans and the stats flushes.
//!
//! A second test checks the summary's internal sanity: the dispatch
//! group's nanoseconds are disjoint event-loop arms so they sum to at most
//! the run's wall clock, dispatch counts equal the pops that produced
//! them, and the delivery count is bounded by the report's message total.
//!
//! The always-on tests run at the fast `bench` scale so tier-1 stays
//! quick; `smoke_scale_profile_is_observation_only` repeats the
//! equivalence check at the paper's smoke scale and is `#[ignore]`d by
//! default (CI's nightly cron runs it in release).
//!
//! All tests flip the process-global `SOC_PROFILE` variable; `with_profile`
//! serializes every flip-run-restore through a shared mutex so parallel
//! test threads cannot leak a flip into each other's runs.

use soc_bench::{diag_lambda05, fig4, table3, Scale};
use soc_sim::{ProtocolChoice, RunReport, Scenario};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_profile<T>(value: &str, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = soc_types::knobs::raw("SOC_PROFILE");
    std::env::set_var("SOC_PROFILE", value);
    let out = f();
    match prev {
        Some(v) => std::env::set_var("SOC_PROFILE", v),
        None => std::env::remove_var("SOC_PROFILE"),
    }
    out
}

fn assert_identical(off: &[RunReport], on: &[RunReport], what: &str) {
    assert_eq!(off.len(), on.len(), "{what}: row count");
    for (o, p) in off.iter().zip(on) {
        assert_eq!(
            o.fingerprint(),
            p.fingerprint(),
            "{what}: {} diverged between SOC_PROFILE=off and =on",
            o.scenario
        );
        assert!(
            o.profile.is_none(),
            "{what}: off-run must carry no profile block"
        );
        assert!(
            p.profile.is_some(),
            "{what}: on-run must carry a profile block"
        );
    }
}

fn grids_identical(scale: Scale, seed: u64, tag: &str) {
    let off = with_profile("off", || table3(scale, seed));
    let on = with_profile("on", || table3(scale, seed));
    assert_identical(&off, &on, &format!("table3@{tag}"));

    // fig4 covers KHDN (greedy routing + its cache probes) and Newscast.
    let off = with_profile("off", || fig4(scale, seed));
    let on = with_profile("on", || fig4(scale, seed));
    assert_eq!(off.len(), on.len());
    for ((lo, o), (lp, p)) in off.iter().zip(&on) {
        assert_eq!(lo, lp, "lambda order");
        assert_identical(o, p, &format!("fig4@{tag}"));
    }

    // The diag grid runs the contended λ=0.5 point with the oracle on.
    let off = with_profile("off", || diag_lambda05(scale, seed));
    let on = with_profile("on", || diag_lambda05(scale, seed));
    assert_identical(&off, &on, &format!("diag@{tag}"));
}

#[test]
fn profile_is_observation_only() {
    grids_identical(Scale::bench(), 7, "bench");
}

/// Internal-consistency invariants of one profiled run.
#[test]
fn profile_summary_is_sane() {
    let report = with_profile("on", || {
        Scenario::paper(ProtocolChoice::Hid)
            .nodes(150)
            .hours(2)
            .lambda(0.5)
            .seed(7)
            .run()
    });
    let p = report.profile.as_ref().expect("profiled run has a summary");
    assert_eq!(p.phases.len(), 18, "all phases reported, fixed order");

    // Dispatch arms are disjoint slices of the event loop: their sum
    // cannot exceed the run's wall clock (+1 ms for the truncation of
    // wall_ms to whole milliseconds).
    let dispatch_ns = p.dispatch_ns();
    let wall_ns = (report.wall_ms + 1) as u64 * 1_000_000;
    assert!(
        dispatch_ns <= wall_ns,
        "dispatch phases sum to {dispatch_ns} ns > wall {wall_ns} ns"
    );
    assert!(dispatch_ns > 0, "a 2-hour run must attribute some time");

    // Every dispatched event came out of exactly one queue pop, and a pop
    // never returns more than one event. Pops exceed dispatches because
    // the windowed executor ends every shard window with one miss pop
    // (the `pop_until(window_bound)` that returns `None`), so the surplus
    // scales with window count rather than being a single final miss.
    let pops = p.count("queue_pop");
    let dispatched = p.dispatch_count();
    assert!(pops >= dispatched, "pops {pops} < dispatched {dispatched}");

    // Nothing pops that was never pushed.
    assert!(
        dispatched <= p.count("queue_push"),
        "dispatched {dispatched} > pushes {}",
        p.count("queue_push")
    );

    // Deliveries are bounded by the messages the stats layer charged:
    // every delivered message was sent (some sends never deliver — faults,
    // dead targets — so ≤, not =).
    assert!(
        p.count("deliver") <= report.msg_total,
        "delivered {} > msg_total {}",
        p.count("deliver"),
        report.msg_total
    );
    assert!(p.count("deliver") > 0, "a 150-node run delivers messages");

    // The render names a top dispatch phase and the tab table parses.
    let table = p.render();
    assert!(table.contains("# top dispatch phase: "));
    assert!(table.lines().count() >= 18);
}

/// The off-path must be truly off: no summary, and (within one process)
/// flipping the knob between runs takes effect per `Sim` construction.
#[test]
fn profile_off_run_has_no_summary() {
    let report = with_profile("off", || {
        Scenario::paper(ProtocolChoice::Hid)
            .nodes(60)
            .hours(1)
            .lambda(0.5)
            .seed(3)
            .run()
    });
    assert!(report.profile.is_none());
    assert!(!report.to_json().contains("\"profile\":["));
    assert!(report.to_json().contains("\"profile\":null"));
}

/// The acceptance-bar check at the paper's smoke scale — run via
/// `cargo test --release -p soc-bench --test profile_equivalence -- --ignored`.
#[test]
#[ignore = "smoke scale: run in release via CI cron or manually"]
fn smoke_scale_profile_is_observation_only() {
    grids_identical(Scale::smoke(), 1, "smoke");
}
