//! The route cache must be a pure memoization: whole-run reports under
//! `SOC_ROUTE=cached` are **bitwise identical** to `SOC_ROUTE=scan` (same
//! hops, same message counts, same downstream RNG draws). This pins it
//! across the fig4, table3 and oracle-diag grids — every routed-message
//! path (INSCAN finger steps, KHDN greedy steps, re-routes around dead
//! hops under churn) end to end.
//!
//! The always-on test runs at the fast `bench` scale so tier-1 stays
//! quick; `smoke_scale_route_backends_identical` repeats the check at the
//! paper's smoke scale and is `#[ignore]`d by default (CI's nightly cron
//! runs it in release).
//!
//! All tests flip the process-global `SOC_ROUTE` variable, and cargo's
//! default harness runs the two always-on tests on separate threads of one
//! process — so `with_route` serializes every flip-run-restore through a
//! shared mutex. Without it, one test's backend flip would silently leak
//! into the other's runs (both backends produce identical reports by
//! design, so the assertions would still pass while comparing a backend
//! against itself).

use soc_bench::{diag_lambda05, fig4, table3, Scale};
use soc_sim::RunReport;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_route<T>(backend: &str, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = soc_types::knobs::raw("SOC_ROUTE");
    std::env::set_var("SOC_ROUTE", backend);
    let out = f();
    match prev {
        Some(v) => std::env::set_var("SOC_ROUTE", v),
        None => std::env::remove_var("SOC_ROUTE"),
    }
    out
}

fn assert_identical(scan: &[RunReport], cached: &[RunReport], what: &str) {
    assert_eq!(scan.len(), cached.len(), "{what}: row count");
    for (s, c) in scan.iter().zip(cached) {
        assert_eq!(
            s.fingerprint(),
            c.fingerprint(),
            "{what}: {} diverged between scan and cached routing",
            s.scenario
        );
    }
}

fn grids_identical(scale: Scale, seed: u64, tag: &str) {
    let scan = with_route("scan", || table3(scale, seed));
    let cached = with_route("cached", || table3(scale, seed));
    assert_identical(&scan, &cached, &format!("table3@{tag}"));

    // fig4 also covers KHDN (greedy routing) and Newscast (no routing).
    let scan = with_route("scan", || fig4(scale, seed));
    let cached = with_route("cached", || fig4(scale, seed));
    assert_eq!(scan.len(), cached.len());
    for ((ls, s), (lc, c)) in scan.iter().zip(&cached) {
        assert_eq!(ls, lc, "lambda order");
        assert_identical(s, c, &format!("fig4@{tag}"));
    }

    // The diag grid runs the contended λ=0.5 point with the oracle on —
    // maximal same-corner target recurrence, so the cache is hot here.
    let scan = with_route("scan", || diag_lambda05(scale, seed));
    let cached = with_route("cached", || diag_lambda05(scale, seed));
    assert_identical(&scan, &cached, &format!("diag@{tag}"));
}

#[test]
fn route_backends_bitwise_identical() {
    grids_identical(Scale::bench(), 7, "bench");
}

/// A trace recorded under one routing backend must replay bit-exactly
/// under the other: routing never touches the workload streams, so the
/// cross-backend round trip pins both the cache and the stream isolation.
#[test]
fn record_replay_round_trip_crosses_backends() {
    use soc_scenario::{record_run, replay_run, ScenarioSpec};
    let spec = ScenarioSpec::parse(
        "[scenario]\n\
         name = route-roundtrip\n\
         protocol = hid\n\
         nodes = 120\n\
         hours = 2\n\
         lambda = 0.5\n\
         churn = 0.5\n\
         seed = 9\n\
         mean_arrival_s = 120\n\
         mean_duration_s = 120\n",
    )
    .expect("inline spec parses");
    let (scan_report, trace) = with_route("scan", || record_run(&spec));
    let cached_report = with_route("cached", || {
        replay_run(&trace).expect("replay stays in sync")
    });
    assert_eq!(
        scan_report.fingerprint(),
        cached_report.fingerprint(),
        "record under scan, replay under cached must be bit-exact"
    );
    // And the reverse direction.
    let (cached_rec, trace2) = with_route("cached", || record_run(&spec));
    let scan_replay = with_route("scan", || {
        replay_run(&trace2).expect("replay stays in sync")
    });
    assert_eq!(cached_rec.fingerprint(), scan_replay.fingerprint());
    assert_eq!(scan_report.fingerprint(), cached_rec.fingerprint());
}

/// The acceptance-bar check at the paper's smoke scale — run via
/// `cargo test --release -p soc-bench --test route_equivalence -- --ignored`.
#[test]
#[ignore = "smoke scale: run in release via CI cron or manually"]
fn smoke_scale_route_backends_identical() {
    grids_identical(Scale::smoke(), 1, "smoke");
}
