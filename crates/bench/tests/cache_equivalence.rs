//! The indexed record cache must be a pure data-structure change: whole-run
//! reports under `SOC_CACHE=indexed` are **bitwise identical** to
//! `SOC_CACHE=scan` (same records, same `FoundList` order, same downstream
//! RNG draws). This pins it across the fig4, table3 and oracle-diag grids —
//! the query hot path end to end, including the oracle's
//! `diag_record_match` probe.
//!
//! The always-on test runs at the fast `bench` scale so tier-1 stays quick;
//! `smoke_scale_cache_backends_identical` repeats the check at the paper's
//! smoke scale and is `#[ignore]`d by default (CI's nightly cron runs it in
//! release).
//!
//! Both tests flip the process-global `SOC_CACHE` variable, so everything
//! lives in single test functions (never run concurrently: `--ignored`
//! selects exactly one of them per process).

use soc_bench::{diag_lambda05, fig4, table3, Scale};
use soc_sim::RunReport;

fn with_cache<T>(backend: &str, f: impl FnOnce() -> T) -> T {
    let prev = soc_types::knobs::raw("SOC_CACHE");
    std::env::set_var("SOC_CACHE", backend);
    let out = f();
    match prev {
        Some(v) => std::env::set_var("SOC_CACHE", v),
        None => std::env::remove_var("SOC_CACHE"),
    }
    out
}

fn assert_identical(scan: &[RunReport], indexed: &[RunReport], what: &str) {
    assert_eq!(scan.len(), indexed.len(), "{what}: row count");
    for (s, i) in scan.iter().zip(indexed) {
        assert_eq!(
            s.fingerprint(),
            i.fingerprint(),
            "{what}: {} diverged between scan and indexed caches",
            s.scenario
        );
    }
}

fn grids_identical(scale: Scale, seed: u64, tag: &str) {
    let scan = with_cache("scan", || table3(scale, seed));
    let indexed = with_cache("indexed", || table3(scale, seed));
    assert_identical(&scan, &indexed, &format!("table3@{tag}"));

    let scan = with_cache("scan", || fig4(scale, seed));
    let indexed = with_cache("indexed", || fig4(scale, seed));
    assert_eq!(scan.len(), indexed.len());
    for ((ls, s), (li, i)) in scan.iter().zip(&indexed) {
        assert_eq!(ls, li, "lambda order");
        assert_identical(s, i, &format!("fig4@{tag}"));
    }

    // The oracle path exercises `has_qualified` over every cache per query.
    let scan = with_cache("scan", || diag_lambda05(scale, seed));
    let indexed = with_cache("indexed", || diag_lambda05(scale, seed));
    assert_identical(&scan, &indexed, &format!("diag@{tag}"));
}

#[test]
fn cache_backends_bitwise_identical() {
    grids_identical(Scale::bench(), 7, "bench");
}

/// The acceptance-bar check at the paper's smoke scale — run via
/// `cargo test --release -p soc-bench --test cache_equivalence -- --ignored`.
#[test]
#[ignore = "smoke scale: run in release via CI cron or manually"]
fn smoke_scale_cache_backends_identical() {
    grids_identical(Scale::smoke(), 1, "smoke");
}
