//! The fault subsystem's two contracts, pinned:
//!
//! 1. **Zero-fault identity.** A run with no `[fault]` section — or an
//!    explicit all-zero one — is bitwise identical to the fault-free
//!    baseline. The FNV fingerprints below pin the windowed executor's
//!    schedule (re-recorded when the sharded engine replaced the flat
//!    event loop, which re-rolled every fingerprint); these tests must
//!    match them until the schedule changes deliberately. Fault
//!    randomness lives on its own `RngStreams::Fault` stream and the
//!    clean path draws none of it.
//! 2. **Measured hostility.** Under 15% blackhole nodes the undefended
//!    run degrades measurably, the blacklist/retry defence recovers a
//!    quantified fraction of the loss, and it does so without
//!    blacklisting honest nodes.
//!
//! Every test here flips process-global environment knobs
//! (`SOC_FAULT_DEFENSE`, `SOC_ROUTE`), so all flips serialize through one
//! mutex — cargo runs this file's tests on separate threads of a single
//! process.

use soc_bench::{diag_hostility, Scale};
use soc_scenario::ScenarioSpec;
use soc_sim::RunReport;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with `SOC_FAULT_DEFENSE` and (optionally) `SOC_ROUTE` set,
/// restoring both afterwards.
fn with_env<T>(defense: &str, route: Option<&str>, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev_d = soc_types::knobs::raw("SOC_FAULT_DEFENSE");
    let prev_r = soc_types::knobs::raw("SOC_ROUTE");
    std::env::set_var("SOC_FAULT_DEFENSE", defense);
    match route {
        Some(r) => std::env::set_var("SOC_ROUTE", r),
        None => std::env::remove_var("SOC_ROUTE"),
    }
    let out = f();
    match prev_d {
        Some(v) => std::env::set_var("SOC_FAULT_DEFENSE", v),
        None => std::env::remove_var("SOC_FAULT_DEFENSE"),
    }
    match prev_r {
        Some(v) => std::env::set_var("SOC_ROUTE", v),
        None => std::env::remove_var("SOC_ROUTE"),
    }
    out
}

/// Short FNV-1a digest of the full fingerprint — the same hash `repro
/// scenario` prints as `# fingerprint:`, so pins can be reproduced on the
/// command line.
fn fnv(r: &RunReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in r.fingerprint().bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn run_spec(text: &str) -> RunReport {
    ScenarioSpec::parse(text)
        .expect("inline spec parses")
        .scenario
        .run()
}

const PIN_QUICK: &str = "[scenario]\nname = pin-quick\nprotocol = hid\nnodes = 150\n\
     duration_ms = 7200000\nlambda = 0.5\nseed = 11\nsample_ms = 600000\n\
     mean_arrival_s = 600\nmean_duration_s = 600\n";

const PIN_CHURN: &str = "[scenario]\nname = pin-churn\nprotocol = hid\nnodes = 150\n\
     duration_ms = 7200000\nlambda = 0.5\nseed = 12\nchurn = 0.5\nsample_ms = 600000\n\
     mean_arrival_s = 600\nmean_duration_s = 600\n";

/// Fault-free fingerprints (recorded via `repro scenario`). Zero-fault
/// runs must reproduce them bitwise.
#[test]
fn zero_fault_runs_match_pre_fault_pins() {
    let (quick, churn) = with_env("off", None, || (run_spec(PIN_QUICK), run_spec(PIN_CHURN)));
    assert_eq!(
        fnv(&quick),
        0xb239_bcba_f76d_fa0f,
        "static zero-fault run diverged from the pinned baseline"
    );
    assert_eq!(
        fnv(&churn),
        0x026b_e06b_8477_ce0b,
        "churny zero-fault run diverged from the pinned baseline"
    );
    assert!(!quick.faults.any());
    assert!(!churn.faults.any());
}

/// Omitting `[fault]` and writing it out all-zero are the same run.
#[test]
fn fault_section_absent_equals_explicit_zero() {
    let explicit = format!(
        "{PIN_QUICK}\n[fault]\nblackhole = 0\nliar = 0\nloss = 0\nburst_loss = 0\n\
         burst_len = 8\nburst_gap = 200\npartition_period_ms = 0\npartition_ms = 0\n"
    );
    let (absent, zeroed) = with_env("off", None, || (run_spec(PIN_QUICK), run_spec(&explicit)));
    assert_eq!(absent.fingerprint(), zeroed.fingerprint());
}

const HOSTILE: &str = "[scenario]\nname = fault-routes\nprotocol = hid\nnodes = 150\n\
     duration_ms = 7200000\nlambda = 0.5\nseed = 11\nchurn = 0.4\nsample_ms = 600000\n\
     mean_arrival_s = 600\nmean_duration_s = 600\n\
     [fault]\nblackhole = 0.15\nloss = 0.02\n";

/// The PR 5 route-cache equivalence must survive the fault model: with
/// faults active — and with the defence detouring around blacklisted next
/// hops — scan and cached routing still produce bitwise-identical runs.
#[test]
fn route_backends_identical_under_faults_and_defence() {
    for defense in ["off", "on"] {
        let scan = with_env(defense, Some("scan"), || run_spec(HOSTILE));
        let cached = with_env(defense, Some("cached"), || run_spec(HOSTILE));
        assert_eq!(
            scan.fingerprint(),
            cached.fingerprint(),
            "scan and cached routing diverged under faults (defence {defense})"
        );
        assert!(scan.faults.drops_total() > 0, "faults never fired");
    }
    // And under zero faults with the defence armed: retry may fire on
    // clean empty-candidate timeouts, but never differently per backend.
    let scan = with_env("on", Some("scan"), || run_spec(PIN_CHURN));
    let cached = with_env("on", Some("cached"), || run_spec(PIN_CHURN));
    assert_eq!(scan.fingerprint(), cached.fingerprint());
}

fn assert_ab_verdict(ab: &soc_bench::HostilityAb, tag: &str) {
    // (1) The attack hurts: ≥15% blackholes must cost visible T-Ratio.
    assert!(
        ab.degradation() > 0.05,
        "{tag}: expected measurable degradation, got {:.3} (clean {:.3} → undefended {:.3})",
        ab.degradation(),
        ab.clean.t_ratio,
        ab.undefended.t_ratio
    );
    // (2) The defence wins a real fraction of it back.
    assert!(
        ab.recovered_fraction() > 0.25,
        "{tag}: defence recovered only {:.0}%",
        ab.recovered_fraction() * 100.0
    );
    // (3) It works by catching the evil nodes, not by shotgunning: honest
    // blacklistings stay rare next to evil ones.
    let f = &ab.defended.faults;
    assert!(
        f.suspected_evil > 0,
        "{tag}: defence never blacklisted anyone"
    );
    assert!(
        f.suspected_honest * 10 <= f.suspected_evil,
        "{tag}: too many honest blacklistings ({} honest vs {} evil)",
        f.suspected_honest,
        f.suspected_evil
    );
    // (4) The undefended run took the damage silently.
    assert_eq!(ab.undefended.faults.retries, 0);
    assert_eq!(ab.undefended.faults.blacklisted, 0);
    assert!(ab.undefended.faults.drops_blackhole > 0);
}

/// The acceptance criterion, asserted: degradation at 15% blackholes,
/// quantified recovery with the defence on.
#[test]
fn defence_recovers_measurable_fraction_under_blackholes() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ab = diag_hostility(Scale::bench(), 7, 0.15);
    assert_ab_verdict(&ab, "bench");
    // Zero faults ⇒ the A/B's clean cell carries no fault accounting.
    assert!(!ab.clean.faults.any());
}

/// Same verdict at the paper's smoke scale — run in release via
/// `cargo test --release -p soc-bench --test fault_equivalence -- --ignored`.
#[test]
#[ignore = "smoke scale: run in release via CI cron or manually"]
fn smoke_scale_defence_verdict_holds() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ab = diag_hostility(Scale::smoke(), 1, 0.15);
    assert_ab_verdict(&ab, "smoke");
}
