//! The sharded windowed-executor driver must be **bitwise identical** to
//! the serial driver: `SOC_SIM_EXEC` selects how shard event windows are
//! pumped (inline vs worker threads), never what they compute. These
//! tests pin that across the committed `scenarios/` gallery — including
//! every `hostile-*` entry with the blacklist/retry defence armed, so the
//! fault-injection and defence paths are exercised under both drivers —
//! and across trace record→replay in both directions (recorded serial,
//! replayed sharded, and vice versa).
//!
//! The big `large-n` scaling point (10⁴ nodes, 8 shards) is `#[ignore]`d
//! by default and runs in CI's nightly cron in release; the rest of the
//! gallery is small enough to stay always-on.
//!
//! Every test flips the process-global `SOC_SIM_EXEC` (and, for the
//! hostile entries, `SOC_FAULT_DEFENSE`) knobs, so all flips serialize
//! through one mutex — cargo runs this file's tests on separate threads
//! of a single process.

use soc_scenario::{record_run, replay_run, ScenarioSpec};
use soc_sim::RunReport;
use std::path::PathBuf;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with `SOC_SIM_EXEC` and `SOC_FAULT_DEFENSE` set, restoring
/// both afterwards.
fn with_exec<T>(exec: &str, defense: &str, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev_e = soc_types::knobs::raw("SOC_SIM_EXEC");
    let prev_d = soc_types::knobs::raw("SOC_FAULT_DEFENSE");
    std::env::set_var("SOC_SIM_EXEC", exec);
    std::env::set_var("SOC_FAULT_DEFENSE", defense);
    let out = f();
    match prev_e {
        Some(v) => std::env::set_var("SOC_SIM_EXEC", v),
        None => std::env::remove_var("SOC_SIM_EXEC"),
    }
    match prev_d {
        Some(v) => std::env::set_var("SOC_FAULT_DEFENSE", v),
        None => std::env::remove_var("SOC_FAULT_DEFENSE"),
    }
    out
}

fn gallery_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn load(name: &str) -> ScenarioSpec {
    let path = gallery_dir().join(name);
    ScenarioSpec::load(&path).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn run_both(spec: &ScenarioSpec, defense: &str) -> (RunReport, RunReport) {
    let serial = with_exec("serial", defense, || spec.scenario.run());
    let sharded = with_exec("sharded", defense, || spec.scenario.run());
    (serial, sharded)
}

/// Every gallery scenario except the cron-only `large-n` scaling point:
/// serial and sharded drivers produce bitwise-identical reports. Hostile
/// entries run with the defence armed so blacklisting, retries and
/// fault-stream draws all happen under both drivers.
#[test]
fn gallery_is_exec_invariant() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(gallery_dir())
        .expect("scenarios/ gallery exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n != "large-n.scn")
        })
        .collect();
    files.sort();
    assert!(files.len() >= 5, "gallery shrank to {}", files.len());
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let spec = ScenarioSpec::load(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let hostile = spec.name.starts_with("hostile-");
        let defense = if hostile { "on" } else { "off" };
        let (serial, sharded) = run_both(&spec, defense);
        assert_eq!(
            serial.fingerprint(),
            sharded.fingerprint(),
            "{name}: sharded driver diverged from serial (defence {defense})"
        );
        if hostile {
            // Liars corrupt reports rather than dropping messages, so the
            // broad any() is the right "fault model actually fired" check.
            assert!(
                serial.faults.any(),
                "{name}: hostile entry exercised no fault path"
            );
        }
    }
}

/// A trace recorded under one driver replays bit-exactly under the other,
/// in both directions. `replay_run` itself verifies the replayed report
/// against the fingerprint embedded at record time, so each call crossing
/// the driver boundary is the assertion.
#[test]
fn record_replay_round_trips_across_exec_drivers() {
    let spec = load("bursty-mmpp.scn");

    let (rep_serial, trace_serial) = with_exec("serial", "off", || record_run(&spec));
    let replayed = with_exec("sharded", "off", || replay_run(&trace_serial))
        .expect("serial-recorded trace must replay bit-exactly under the sharded driver");
    assert_eq!(rep_serial.fingerprint(), replayed.fingerprint());

    let (rep_sharded, trace_sharded) = with_exec("sharded", "off", || record_run(&spec));
    let replayed = with_exec("serial", "off", || replay_run(&trace_sharded))
        .expect("sharded-recorded trace must replay bit-exactly under the serial driver");
    assert_eq!(rep_sharded.fingerprint(), replayed.fingerprint());

    // Both directions describe the same run.
    assert_eq!(rep_serial.fingerprint(), rep_sharded.fingerprint());
}

/// The multi-shard scaling point (10⁴ nodes across ~313 LANs → the full
/// default 8 shards): serial and sharded drivers stay bitwise identical
/// at scale. Run via
/// `cargo test --release -p soc-bench --test exec_equivalence -- --ignored`.
#[test]
#[ignore = "large scale: run in release via CI cron or manually"]
fn large_n_scaling_point_is_exec_invariant() {
    let spec = load("large-n.scn");
    let (serial, sharded) = run_both(&spec, "off");
    assert_eq!(
        serial.fingerprint(),
        sharded.fingerprint(),
        "large-n: sharded driver diverged from serial"
    );
}
