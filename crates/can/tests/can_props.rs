//! Property-based tests for the CAN substrate: the partition tree tiles the
//! space under arbitrary churn, neighbor tables stay exactly consistent with
//! zone geometry, and greedy routing always converges to the true owner.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use soc_can::{adjacency, is_negative_direction, route_path, CanOverlay, PartitionTree, Zone};
use soc_types::{NodeId, ResVec};

/// A churn script: joins (point) and leaves (victim selector).
#[derive(Clone, Debug)]
enum Op {
    Join([f64; 3]),
    Leave(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => prop::array::uniform3(0.0f64..1.0).prop_map(Op::Join),
        1 => (0usize..64).prop_map(Op::Leave),
    ]
}

fn pt(c: &[f64]) -> ResVec {
    ResVec::from_slice(c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_tiles_space_under_churn(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut t = PartitionTree::new(3, NodeId(0));
        let mut next = 1u32;
        for op in ops {
            match op {
                Op::Join(p) => {
                    t.join(NodeId(next), &pt(&p));
                    next += 1;
                }
                Op::Leave(k) => {
                    if t.len() > 1 {
                        let victims: Vec<NodeId> = t.leaves().map(|(n, _)| n).collect();
                        let mut sorted = victims;
                        sorted.sort();
                        let v = sorted[k % sorted.len()];
                        t.leave(v).unwrap();
                    }
                }
            }
            prop_assert!(t.validate().is_ok(), "{:?}", t.validate());
        }
    }

    #[test]
    fn every_point_has_exactly_one_owner(
        points in prop::collection::vec(prop::array::uniform3(0.0f64..1.0), 20),
        probes in prop::collection::vec(prop::array::uniform3(0.0f64..1.0), 20),
    ) {
        let mut t = PartitionTree::new(3, NodeId(0));
        for (i, p) in points.iter().enumerate() {
            t.join(NodeId(i as u32 + 1), &pt(p));
        }
        for q in &probes {
            let q = pt(q);
            let owner = t.find_leaf(&q);
            // Exactly one leaf zone contains the probe point.
            let containing: Vec<NodeId> = t
                .leaves()
                .filter(|(_, z)| z.contains(&q))
                .map(|(n, _)| n)
                .collect();
            prop_assert_eq!(containing.len(), 1);
            prop_assert_eq!(containing[0], owner);
        }
    }

    #[test]
    fn overlay_neighbors_consistent_under_churn(seed in 0u64..1000, churn_rounds in 0usize..12) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ov = CanOverlay::bootstrap(2, 24, 64, &mut rng);
        for round in 0..churn_rounds {
            let newcomer = NodeId(24 + round as u32);
            ov.join(newcomer, &soc_can::overlay::random_point(2, &mut rng));
            let nth = (seed as usize + round) % ov.len();
            let victim = ov.live_nodes().nth(nth).unwrap();
            ov.leave(victim);
        }
        prop_assert!(ov.validate().is_ok(), "{:?}", ov.validate());
    }

    #[test]
    fn routing_always_converges(seed in 0u64..500, target in prop::array::uniform2(0.0f64..1.0)) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ov = CanOverlay::bootstrap(2, 40, 64, &mut rng);
        let t = pt(&target);
        for start in ov.live_nodes() {
            let out = route_path(&ov, start, &t, 4_000);
            prop_assert_eq!(out.owner, Some(ov.owner_of(&t)));
        }
    }

    #[test]
    fn adjacency_is_symmetric_with_flipped_orientation(
        a_lo in prop::array::uniform2(0.0f64..0.9),
        b_lo in prop::array::uniform2(0.0f64..0.9),
        w in 0.05f64..0.5,
    ) {
        let za = Zone::new(pt(&a_lo), pt(&[a_lo[0] + w, a_lo[1] + w]));
        let zb = Zone::new(pt(&b_lo), pt(&[b_lo[0] + w, b_lo[1] + w]));
        match (adjacency(&za, &zb), adjacency(&zb, &za)) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.dim, y.dim);
                prop_assert_ne!(x.first_is_positive, y.first_is_positive);
            }
            other => prop_assert!(false, "asymmetric adjacency: {:?}", other),
        }
    }

    #[test]
    fn negative_direction_is_transitive_on_chains(
        xs in prop::collection::vec(0.0f64..0.3, 2),
        shift in 0.31f64..0.6,
    ) {
        // Build three boxes stacked along both axes: A below B below C.
        let a = Zone::new(pt(&xs), pt(&[xs[0] + 0.05, xs[1] + 0.05]));
        let b = Zone::new(
            pt(&[xs[0] + shift * 0.5, xs[1] + shift * 0.5]),
            pt(&[xs[0] + shift * 0.5 + 0.05, xs[1] + shift * 0.5 + 0.05]),
        );
        let c = Zone::new(
            pt(&[xs[0] + shift, xs[1] + shift]),
            pt(&[xs[0] + shift + 0.05, xs[1] + shift + 0.05]),
        );
        if is_negative_direction(&a, &b) && is_negative_direction(&b, &c) {
            prop_assert!(is_negative_direction(&a, &c));
        }
    }

    #[test]
    fn split_then_merge_roundtrip(
        lo in prop::array::uniform3(0.0f64..0.5),
        w in 0.1f64..0.5,
        dim in 0usize..3,
    ) {
        let z = Zone::new(pt(&lo), pt(&[lo[0] + w, lo[1] + w, lo[2] + w]));
        let (a, b) = z.split(dim);
        prop_assert_eq!(a.merge(&b), Some(z));
        prop_assert!((a.volume() + b.volume() - z.volume()).abs() < 1e-12);
        // Halves are adjacent along the split dimension.
        let adj = adjacency(&a, &b).unwrap();
        prop_assert_eq!(adj.dim, dim);
    }
}
