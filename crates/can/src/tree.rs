//! The CAN binary partition tree.
//!
//! CAN's zone structure is the leaf set of a binary split tree: every join
//! splits one leaf in two, and every departure un-splits (possibly after a
//! "defragmentation" handover, per the CAN paper's takeover algorithm, which
//! this paper adopts in §IV-B: "a binary partition tree based background
//! zone reassignment algorithm \[14\] to ensure each node always corresponds
//! to a globally unique zone").
//!
//! The tree also answers point location (`find_leaf`) in O(depth).

use crate::zone::{Point, Zone};
use soc_types::NodeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

#[derive(Clone, Debug)]
enum NodeKind {
    Leaf(NodeId),
    Internal { left: usize, right: usize },
}

#[derive(Clone, Debug)]
struct TreeNode {
    zone: Zone,
    parent: Option<usize>,
    depth: usize,
    kind: NodeKind,
}

/// The global zone-partition structure.
///
/// Invariants (checked by `debug_validate` and the property tests):
/// * leaves tile `[0,1]^d` exactly (disjoint interiors, full cover);
/// * each live `NodeId` owns exactly one leaf;
/// * every internal node's children merge back to its zone;
/// * splits cycle through dimensions by depth (`split dim = depth % d`).
#[derive(Debug)]
pub struct PartitionTree {
    nodes: Vec<TreeNode>,
    free: Vec<usize>,
    root: usize,
    leaf_of: HashMap<NodeId, usize>,
    dim: usize,
    /// Last leaf returned by [`PartitionTree::find_leaf`]. Point queries
    /// cluster (oracle checks re-resolve the same demand corner, state
    /// updates hit the same duty zones), so checking the previous hit —
    /// O(d) containment — usually skips the O(depth) descent. Invalidated
    /// on every structural change; leaves tile the space, so any *live*
    /// leaf whose zone contains the point is the unique correct answer.
    ///
    /// Atomic (Relaxed) rather than `Cell` so the sharded executor may
    /// call `find_leaf` from several worker threads on a structurally
    /// frozen tree: any stored index is a live leaf during a window, the
    /// hint is validated before use, and a racy overwrite only costs one
    /// extra descent — never a wrong answer.
    last_hit: AtomicUsize,
}

impl Clone for PartitionTree {
    fn clone(&self) -> Self {
        PartitionTree {
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            root: self.root,
            leaf_of: self.leaf_of.clone(),
            dim: self.dim,
            // Pure hint: the clone starts cold rather than copying it.
            last_hit: AtomicUsize::new(NO_HIT),
        }
    }
}

/// Sentinel for an empty/invalidated `last_hit` cache.
const NO_HIT: usize = usize::MAX;

impl PartitionTree {
    /// A tree with a single leaf (the whole space) owned by `first`.
    pub fn new(dim: usize, first: NodeId) -> Self {
        let root = TreeNode {
            zone: Zone::unit(dim),
            parent: None,
            depth: 0,
            kind: NodeKind::Leaf(first),
        };
        let mut leaf_of = HashMap::new();
        leaf_of.insert(first, 0);
        PartitionTree {
            nodes: vec![root],
            free: Vec::new(),
            root: 0,
            leaf_of,
            dim,
            last_hit: AtomicUsize::new(NO_HIT),
        }
    }

    /// Dimensionality of the key space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of live leaves (= overlay size).
    pub fn len(&self) -> usize {
        self.leaf_of.len()
    }

    /// True when only the bootstrap node remains.
    pub fn is_empty(&self) -> bool {
        self.leaf_of.is_empty()
    }

    /// Is `node` currently an owner of a zone?
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.leaf_of.contains_key(&node)
    }

    /// Zone currently owned by `node`, if it is in the overlay.
    pub fn zone_of(&self, node: NodeId) -> Option<&Zone> {
        self.leaf_of.get(&node).map(|&i| &self.nodes[i].zone)
    }

    /// Owner of the leaf containing `p`.
    pub fn find_leaf(&self, p: &Point) -> NodeId {
        // Last-hit fast path: valid between structural changes (the cache
        // is cleared on join/leave, so the slot is a live leaf).
        let cached = self.last_hit.load(Ordering::Relaxed);
        if cached != NO_HIT {
            if let NodeKind::Leaf(owner) = self.nodes[cached].kind {
                if self.nodes[cached].zone.contains(p) {
                    return owner;
                }
            }
        }
        let mut i = self.root;
        loop {
            match self.nodes[i].kind {
                NodeKind::Leaf(owner) => {
                    self.last_hit.store(i, Ordering::Relaxed);
                    return owner;
                }
                NodeKind::Internal { left, right } => {
                    i = if self.nodes[left].zone.contains(p) {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// All `(owner, zone)` pairs, ordered by owner id.
    ///
    /// `leaf_of` is a HashMap, so its raw iteration order is arbitrary;
    /// sorting here keeps every caller deterministic by construction
    /// instead of trusting each call site to normalize.
    pub fn leaves(&self) -> impl Iterator<Item = (NodeId, &Zone)> + '_ {
        let mut out: Vec<(NodeId, &Zone)> = self
            .leaf_of // soc-lint: allow(no-unordered-iter) -- order normalized by the sort below
            .iter()
            .map(|(&id, &i)| (id, &self.nodes[i].zone))
            .collect();
        out.sort_unstable_by_key(|&(id, _)| id); // soc-lint: allow(no-unstable-sort) -- map keys are unique, stability is moot
        out.into_iter()
    }

    fn alloc(&mut self, n: TreeNode) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = n;
            i
        } else {
            self.nodes.push(n);
            self.nodes.len() - 1
        }
    }

    /// Join: `newcomer` picks the random point `p`, the owner of the leaf
    /// containing `p` splits its zone (along `depth % d`, CAN's cyclic
    /// order) and hands the half *not* containing `p`… to itself; the
    /// newcomer takes the half containing `p`.
    ///
    /// Returns `(splitter, newcomer_zone, splitter_zone)`.
    ///
    /// # Panics
    /// Panics if `newcomer` is already in the overlay.
    pub fn join(&mut self, newcomer: NodeId, p: &Point) -> (NodeId, Zone, Zone) {
        assert!(
            !self.leaf_of.contains_key(&newcomer),
            "{newcomer} already joined"
        );
        let owner = self.find_leaf(p);
        let leaf_idx = self.leaf_of[&owner];
        let depth = self.nodes[leaf_idx].depth;
        let split_dim = depth % self.dim;
        let (lo_half, hi_half) = self.nodes[leaf_idx].zone.split(split_dim);

        // Newcomer takes the half containing its chosen point.
        let (new_zone, old_zone) = if lo_half.contains(p) {
            (lo_half, hi_half)
        } else {
            (hi_half, lo_half)
        };

        let left_first = new_zone.lo()[split_dim] < old_zone.lo()[split_dim];
        let (left_zone, right_zone, left_owner, right_owner) = if left_first {
            (new_zone, old_zone, newcomer, owner)
        } else {
            (old_zone, new_zone, owner, newcomer)
        };

        let left = self.alloc(TreeNode {
            zone: left_zone,
            parent: Some(leaf_idx),
            depth: depth + 1,
            kind: NodeKind::Leaf(left_owner),
        });
        let right = self.alloc(TreeNode {
            zone: right_zone,
            parent: Some(leaf_idx),
            depth: depth + 1,
            kind: NodeKind::Leaf(right_owner),
        });
        self.nodes[leaf_idx].kind = NodeKind::Internal { left, right };
        self.leaf_of.insert(left_owner, left);
        self.leaf_of.insert(right_owner, right);
        self.last_hit.store(NO_HIT, Ordering::Relaxed);

        (owner, new_zone, old_zone)
    }

    fn sibling(&self, idx: usize) -> Option<usize> {
        let parent = self.nodes[idx].parent?;
        match self.nodes[parent].kind {
            NodeKind::Internal { left, right } => Some(if left == idx { right } else { left }),
            NodeKind::Leaf(_) => unreachable!("parent must be internal"),
        }
    }

    /// Find an internal node in the subtree at `idx` whose children are both
    /// leaves, or return `idx` itself if it is a leaf.
    fn deepest_leaf_pair(&self, idx: usize) -> usize {
        let mut i = idx;
        loop {
            match self.nodes[i].kind {
                NodeKind::Leaf(_) => return i,
                NodeKind::Internal { left, right } => {
                    let both_leaves = matches!(self.nodes[left].kind, NodeKind::Leaf(_))
                        && matches!(self.nodes[right].kind, NodeKind::Leaf(_));
                    if both_leaves {
                        return i;
                    }
                    // Descend into an internal child (prefer left for
                    // determinism).
                    i = if matches!(self.nodes[left].kind, NodeKind::Internal { .. }) {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn collapse(&mut self, parent: usize, new_owner: NodeId) {
        if let NodeKind::Internal { left, right } = self.nodes[parent].kind {
            self.free.push(left);
            self.free.push(right);
            self.nodes[parent].kind = NodeKind::Leaf(new_owner);
            self.leaf_of.insert(new_owner, parent);
        } else {
            unreachable!("collapse target must be internal");
        }
    }

    /// Departure with CAN takeover.
    ///
    /// * If the departing leaf's sibling is a leaf, the sibling owner simply
    ///   absorbs the merged parent zone.
    /// * Otherwise (the sibling subtree is deeper), find the shallowest
    ///   sibling *leaf pair* in that subtree; one of the pair hands its zone
    ///   to its own sibling (merging that pair) and moves over to take the
    ///   departing node's zone — the CAN defragmentation handover.
    ///
    /// Returns the list of `(node, new_zone)` reassignments performed
    /// (1 entry for the simple merge, 2 for the handover case), so callers
    /// can update neighbor tables. Returns `None` when `node` is the last
    /// one in the overlay (the tree then becomes empty and unusable — the
    /// simulator never drains the overlay completely).
    ///
    /// # Panics
    /// Panics if `node` is not in the overlay.
    pub fn leave(&mut self, node: NodeId) -> Option<Vec<(NodeId, Zone)>> {
        // Collapse frees tree slots without rewriting them; a cached slot
        // could otherwise keep answering as a stale leaf.
        self.last_hit.store(NO_HIT, Ordering::Relaxed);
        let leaf_idx = *self.leaf_of.get(&node).expect("node not in overlay");
        self.leaf_of.remove(&node);
        let Some(sib) = self.sibling(leaf_idx) else {
            // Departing node owned the whole space.
            return None;
        };
        let parent = self.nodes[leaf_idx].parent.expect("sibling implies parent");

        if let NodeKind::Leaf(sib_owner) = self.nodes[sib].kind {
            // Simple merge: sibling takes over the parent zone.
            self.collapse(parent, sib_owner);
            let z = self.nodes[parent].zone;
            return Some(vec![(sib_owner, z)]);
        }

        // Handover: pull a leaf pair out of the sibling subtree.
        let pair_parent = self.deepest_leaf_pair(sib);
        let (mover, stayer) = match self.nodes[pair_parent].kind {
            NodeKind::Internal { left, right } => {
                let l_owner = match self.nodes[left].kind {
                    NodeKind::Leaf(o) => o,
                    _ => unreachable!(),
                };
                let r_owner = match self.nodes[right].kind {
                    NodeKind::Leaf(o) => o,
                    _ => unreachable!(),
                };
                (l_owner, r_owner)
            }
            NodeKind::Leaf(_) => unreachable!("deepest_leaf_pair found a leaf under internal sib"),
        };
        // `stayer` absorbs the pair's merged zone…
        self.leaf_of.remove(&mover);
        self.collapse(pair_parent, stayer);
        let stayer_zone = self.nodes[pair_parent].zone;
        // …and `mover` takes the departed node's zone.
        self.nodes[leaf_idx].kind = NodeKind::Leaf(mover);
        self.leaf_of.insert(mover, leaf_idx);
        let mover_zone = self.nodes[leaf_idx].zone;

        Some(vec![(stayer, stayer_zone), (mover, mover_zone)])
    }

    /// Exhaustive structural validation (test/debug use).
    pub fn validate(&self) -> Result<(), String> {
        // Leaves must tile the space: total volume 1 and pairwise disjoint.
        let leaves: Vec<(NodeId, Zone)> = self.leaves().map(|(n, z)| (n, *z)).collect();
        let vol: f64 = leaves.iter().map(|(_, z)| z.volume()).sum();
        if (vol - 1.0).abs() > 1e-9 {
            return Err(format!("leaf volume {vol} != 1"));
        }
        for (i, (_, a)) in leaves.iter().enumerate() {
            for (_, b) in leaves.iter().skip(i + 1) {
                let overlap = (0..a.dim()).all(|d| a.ranges_overlap(b, d));
                if overlap {
                    return Err(format!("overlapping leaves {a:?} {b:?}"));
                }
            }
        }
        // leaf_of is consistent.
        // soc-lint: allow(no-unordered-iter) -- order-blind validation: each entry is checked independently
        for (&id, &idx) in &self.leaf_of {
            match self.nodes[idx].kind {
                NodeKind::Leaf(o) if o == id => {}
                _ => return Err(format!("leaf_of[{id}] stale")),
            }
        }
        // Children merge to parents.
        for n in &self.nodes {
            if let NodeKind::Internal { left, right } = n.kind {
                let merged = self.nodes[left].zone.merge(&self.nodes[right].zone);
                if merged != Some(n.zone) {
                    return Err("children do not merge to parent zone".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_types::ResVec;

    fn pt(s: &[f64]) -> Point {
        ResVec::from_slice(s)
    }

    #[test]
    fn bootstrap_owns_everything() {
        let t = PartitionTree::new(2, NodeId(0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.find_leaf(&pt(&[0.3, 0.9])), NodeId(0));
        assert_eq!(t.zone_of(NodeId(0)), Some(&Zone::unit(2)));
        t.validate().unwrap();
    }

    #[test]
    fn join_splits_cyclically() {
        let mut t = PartitionTree::new(2, NodeId(0));
        // depth 0 → split dim 0.
        t.join(NodeId(1), &pt(&[0.9, 0.5]));
        assert_eq!(t.zone_of(NodeId(0)).unwrap().hi()[0], 0.5);
        assert_eq!(t.zone_of(NodeId(1)).unwrap().lo()[0], 0.5);
        // depth 1 → split dim 1.
        t.join(NodeId(2), &pt(&[0.9, 0.9]));
        assert_eq!(t.zone_of(NodeId(1)).unwrap().hi()[1], 0.5);
        assert_eq!(t.zone_of(NodeId(2)).unwrap().lo()[1], 0.5);
        t.validate().unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn newcomer_takes_half_containing_its_point() {
        let mut t = PartitionTree::new(1, NodeId(0));
        t.join(NodeId(1), &pt(&[0.1]));
        assert!(t.zone_of(NodeId(1)).unwrap().contains(&pt(&[0.1])));
        assert!(t.zone_of(NodeId(0)).unwrap().contains(&pt(&[0.9])));
    }

    #[test]
    fn simple_leave_merges_sibling() {
        let mut t = PartitionTree::new(2, NodeId(0));
        t.join(NodeId(1), &pt(&[0.9, 0.5]));
        let re = t.leave(NodeId(1)).unwrap();
        assert_eq!(re, vec![(NodeId(0), Zone::unit(2))]);
        assert_eq!(t.len(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn handover_leave_reassigns_two_nodes() {
        let mut t = PartitionTree::new(2, NodeId(0));
        t.join(NodeId(1), &pt(&[0.9, 0.5])); // right half
        t.join(NodeId(2), &pt(&[0.9, 0.9])); // right-top
        t.join(NodeId(3), &pt(&[0.9, 0.99])); // split right-top again
                                              // Node 0 owns the left half; its sibling subtree is deep.
        let re = t.leave(NodeId(0)).unwrap();
        assert_eq!(re.len(), 2, "handover must reassign a pair: {re:?}");
        t.validate().unwrap();
        assert_eq!(t.len(), 3);
        // Space still fully covered.
        for p in [[0.1, 0.1], [0.9, 0.1], [0.9, 0.9], [0.1, 0.9]] {
            let _ = t.find_leaf(&pt(&p));
        }
    }

    #[test]
    fn last_node_leave_returns_none() {
        let mut t = PartitionTree::new(2, NodeId(0));
        assert!(t.leave(NodeId(0)).is_none());
    }

    #[test]
    fn many_joins_and_leaves_stay_valid() {
        let mut t = PartitionTree::new(3, NodeId(0));
        // Deterministic pseudo-random points via a simple LCG.
        let mut s = 12345u64;
        let mut r = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 1..200u32 {
            let p = pt(&[r(), r(), r()]);
            t.join(NodeId(i), &p);
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 200);
        for i in (1..200u32).step_by(2) {
            t.leave(NodeId(i)).unwrap();
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 100);
        // Point location still resolves to live owners.
        for _ in 0..100 {
            let p = pt(&[r(), r(), r()]);
            let owner = t.find_leaf(&p);
            assert!(t.contains_node(owner));
            assert!(t.zone_of(owner).unwrap().contains(&p));
        }
    }

    #[test]
    fn last_hit_cache_survives_churn() {
        let mut t = PartitionTree::new(2, NodeId(0));
        t.join(NodeId(1), &pt(&[0.9, 0.5]));
        t.join(NodeId(2), &pt(&[0.9, 0.9]));
        let p = pt(&[0.9, 0.9]);
        // Warm the cache, then hit it repeatedly.
        assert_eq!(t.find_leaf(&p), NodeId(2));
        assert_eq!(t.find_leaf(&p), NodeId(2));
        // Structural change: the cached leaf splits; answers must follow.
        t.join(NodeId(3), &pt(&[0.99, 0.99]));
        let owner = t.find_leaf(&p);
        assert!(t.zone_of(owner).unwrap().contains(&p));
        // Leave collapses zones; the stale slot must not answer.
        t.leave(owner).unwrap();
        let owner2 = t.find_leaf(&p);
        assert!(t.zone_of(owner2).unwrap().contains(&p));
        t.validate().unwrap();
    }

    #[test]
    fn node_slots_are_recycled() {
        let mut t = PartitionTree::new(2, NodeId(0));
        t.join(NodeId(1), &pt(&[0.9, 0.5]));
        let before = t.nodes.len();
        t.leave(NodeId(1)).unwrap();
        t.join(NodeId(2), &pt(&[0.9, 0.5]));
        assert_eq!(t.nodes.len(), before, "freed slots must be reused");
    }
}
