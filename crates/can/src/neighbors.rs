//! Zone adjacency and the paper's positive/negative orientation.
//!
//! §III-A defines the vocabulary this module implements:
//!
//! * Two nodes are **adjacent neighbors** when exactly one dimension has
//!   non-overlapping (abutting) ranges and all other dimensions overlap.
//! * Along that dimension, the node on the *greater* side is the
//!   **positive neighbor** of the other; the lower one is the **negative
//!   neighbor** (Fig. 1: node 22 is node 12's negative neighbor).
//! * Zone A is a **negative-direction node** of B when, in every dimension,
//!   A's range either overlaps B's or lies entirely below it (Fig. 1:
//!   node 22 is node 13's negative-direction node).

use crate::zone::Zone;

/// Result of an adjacency test between two zones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Adjacency {
    /// The single dimension along which the zones abut.
    pub dim: usize,
    /// `true` when the *first* zone is on the greater side (i.e. the first
    /// zone is the second's positive neighbor).
    pub first_is_positive: bool,
}

/// Test whether `a` and `b` are adjacent neighbors; if so, report the
/// abutting dimension and orientation.
///
/// Zone boundaries are exact binary fractions, so `==` on bounds is sound.
pub fn adjacency(a: &Zone, b: &Zone) -> Option<Adjacency> {
    debug_assert_eq!(a.dim(), b.dim());
    let mut abutting: Option<Adjacency> = None;
    for d in 0..a.dim() {
        if a.ranges_overlap(b, d) {
            continue;
        }
        // Non-overlapping dimension: must abut exactly, and be unique.
        if abutting.is_some() {
            return None; // two separated dimensions → diagonal, not adjacent
        }
        if a.lo()[d] == b.hi()[d] {
            abutting = Some(Adjacency {
                dim: d,
                first_is_positive: true,
            });
        } else if a.hi()[d] == b.lo()[d] {
            abutting = Some(Adjacency {
                dim: d,
                first_is_positive: false,
            });
        } else {
            return None; // separated with a gap
        }
    }
    abutting
}

/// Is `a` a negative-direction node of `b`? (Every dimension of `a`'s zone
/// overlaps `b`'s or lies entirely below it.)
pub fn is_negative_direction(a: &Zone, b: &Zone) -> bool {
    debug_assert_eq!(a.dim(), b.dim());
    (0..a.dim()).all(|d| a.ranges_overlap(b, d) || a.hi()[d] <= b.lo()[d])
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_types::ResVec;

    fn z(lo: &[f64], hi: &[f64]) -> Zone {
        Zone::new(ResVec::from_slice(lo), ResVec::from_slice(hi))
    }

    #[test]
    fn halves_are_adjacent() {
        let (a, b) = Zone::unit(2).split(0);
        let adj = adjacency(&a, &b).unwrap();
        assert_eq!(adj.dim, 0);
        assert!(!adj.first_is_positive); // a is the lower half
        let adj = adjacency(&b, &a).unwrap();
        assert!(adj.first_is_positive);
    }

    #[test]
    fn diagonal_zones_are_not_adjacent() {
        let a = z(&[0.0, 0.0], &[0.5, 0.5]);
        let b = z(&[0.5, 0.5], &[1.0, 1.0]);
        assert_eq!(adjacency(&a, &b), None); // corner touch only
    }

    #[test]
    fn gap_means_not_adjacent() {
        let a = z(&[0.0, 0.0], &[0.25, 1.0]);
        let b = z(&[0.5, 0.0], &[1.0, 1.0]);
        assert_eq!(adjacency(&a, &b), None);
    }

    #[test]
    fn same_zone_not_adjacent() {
        let a = z(&[0.0, 0.0], &[0.5, 1.0]);
        assert_eq!(adjacency(&a, &a), None); // all dims overlap
    }

    #[test]
    fn partial_overlap_counts_as_adjacent() {
        // b sits to the right of a but covers only part of a's y-range.
        let a = z(&[0.0, 0.0], &[0.5, 1.0]);
        let b = z(&[0.5, 0.25], &[1.0, 0.5]);
        let adj = adjacency(&a, &b).unwrap();
        assert_eq!(adj.dim, 0);
        assert!(!adj.first_is_positive);
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let a = z(&[0.0, 0.0], &[0.5, 1.0]);
        let b = z(&[0.5, 0.0], &[1.0, 1.0]);
        let ab = adjacency(&a, &b).unwrap();
        let ba = adjacency(&b, &a).unwrap();
        assert_ne!(ab.first_is_positive, ba.first_is_positive);
        assert_eq!(ab.dim, ba.dim);
    }

    #[test]
    fn negative_direction_examples_from_fig1() {
        // Low-corner zone is negative-direction of the high-corner zone.
        let low = z(&[0.0, 0.0], &[0.25, 0.25]);
        let high = z(&[0.75, 0.75], &[1.0, 1.0]);
        assert!(is_negative_direction(&low, &high));
        assert!(!is_negative_direction(&high, &low));
        // A zone overlapping in all dims is negative-direction both ways.
        let mid = z(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(is_negative_direction(&mid, &mid));
    }

    #[test]
    fn negative_direction_requires_every_dim() {
        // Above in y, below in x: neither direction dominates.
        let a = z(&[0.0, 0.75], &[0.25, 1.0]);
        let b = z(&[0.75, 0.0], &[1.0, 0.25]);
        assert!(!is_negative_direction(&a, &b));
        assert!(!is_negative_direction(&b, &a));
    }

    #[test]
    fn adjacent_negative_neighbor_is_negative_direction() {
        // An abutting lower neighbor is also a negative-direction node.
        let (lo, hi) = Zone::unit(2).split(0);
        assert!(is_negative_direction(&lo, &hi));
        assert!(!is_negative_direction(&hi, &lo));
    }
}
