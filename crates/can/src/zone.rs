//! Zones: axis-aligned boxes partitioning the CAN key space `[0,1]^d`.

use soc_types::ResVec;

/// A point in the CAN key space (components in `[0,1]`).
pub type Point = ResVec;

/// A half-open axis-aligned box `[lo, hi)` per dimension.
///
/// Splits always occur at midpoints, so all boundaries are exact binary
/// fractions and `f64` equality on them is reliable. Zones whose upper bound
/// is exactly `1.0` treat that face as *closed* so the point `1.0`
/// (a fully-idle node's normalized availability) is owned by someone.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Zone {
    lo: ResVec,
    hi: ResVec,
}

impl Zone {
    /// The whole key space `[0,1]^d`.
    pub fn unit(dim: usize) -> Zone {
        Zone {
            lo: ResVec::zeros(dim),
            hi: ResVec::splat(dim, 1.0),
        }
    }

    /// Construct from bounds.
    ///
    /// # Panics
    /// Panics if `lo` does not strictly precede `hi` in every dimension.
    pub fn new(lo: ResVec, hi: ResVec) -> Zone {
        assert_eq!(lo.dim(), hi.dim());
        for i in 0..lo.dim() {
            assert!(lo[i] < hi[i], "degenerate zone in dim {i}: {lo:?}..{hi:?}");
        }
        Zone { lo, hi }
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &ResVec {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &ResVec {
        &self.hi
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.dim()
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        (self.lo + self.hi) * 0.5
    }

    /// Extent along `dim`.
    #[inline]
    pub fn width(&self, dim: usize) -> f64 {
        self.hi[dim] - self.lo[dim]
    }

    /// Volume (product of widths).
    pub fn volume(&self) -> f64 {
        (0..self.dim()).map(|d| self.width(d)).product()
    }

    /// Does the zone contain `p`? Half-open except on the top face of the
    /// key space (where `hi == 1.0` is inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dim(), p.dim());
        (0..self.dim()).all(|d| {
            let inside_hi = if self.hi[d] == 1.0 {
                p[d] <= 1.0
            } else {
                p[d] < self.hi[d]
            };
            p[d] >= self.lo[d] && inside_hi
        })
    }

    /// Does the *open interior* of `self` intersect the box `[lo, hi]`?
    ///
    /// Used by INSCAN-RQ to enumerate the "shaded zones" (Fig. 1) a range
    /// query must check.
    pub fn overlaps_box(&self, lo: &Point, hi: &Point) -> bool {
        debug_assert_eq!(self.dim(), lo.dim());
        (0..self.dim()).all(|d| self.lo[d] < hi[d] && self.hi[d] > lo[d])
    }

    /// Do the projections of `self` and `other` onto `dim` overlap with
    /// positive measure?
    #[inline]
    pub fn ranges_overlap(&self, other: &Zone, dim: usize) -> bool {
        self.lo[dim] < other.hi[dim] && self.hi[dim] > other.lo[dim]
    }

    /// Split at the midpoint of `dim`, returning `(lower, upper)`.
    ///
    /// # Panics
    /// Panics if the zone is too thin to split (below f64 resolution).
    pub fn split(&self, dim: usize) -> (Zone, Zone) {
        let mid = 0.5 * (self.lo[dim] + self.hi[dim]);
        assert!(
            mid > self.lo[dim] && mid < self.hi[dim],
            "zone too thin to split along dim {dim}"
        );
        let mut lo_hi = self.hi;
        lo_hi[dim] = mid;
        let mut hi_lo = self.lo;
        hi_lo[dim] = mid;
        (
            Zone {
                lo: self.lo,
                hi: lo_hi,
            },
            Zone {
                lo: hi_lo,
                hi: self.hi,
            },
        )
    }

    /// Merge two boxes that abut exactly along one dimension and have
    /// identical cross-sections in every other dimension (in particular,
    /// the two halves of one [`Zone::split`]). Returns `None` otherwise.
    pub fn merge(&self, other: &Zone) -> Option<Zone> {
        let mut diff_dim = None;
        for d in 0..self.dim() {
            if self.lo[d] == other.lo[d] && self.hi[d] == other.hi[d] {
                continue;
            }
            if diff_dim.is_some() {
                return None; // differ in more than one dimension
            }
            diff_dim = Some(d);
        }
        let d = diff_dim?;
        if self.hi[d] == other.lo[d] {
            Some(Zone {
                lo: self.lo,
                hi: other.hi,
            })
        } else if other.hi[d] == self.lo[d] {
            Some(Zone {
                lo: other.lo,
                hi: self.hi,
            })
        } else {
            None
        }
    }

    /// Minimum Euclidean distance from the zone (as a closed box) to `p`;
    /// zero when `p` is inside. This is the metric greedy routing minimizes.
    pub fn dist_to_point(&self, p: &Point) -> f64 {
        let mut acc = 0.0;
        for d in 0..self.dim() {
            let gap = if p[d] < self.lo[d] {
                self.lo[d] - p[d]
            } else if p[d] > self.hi[d] {
                p[d] - self.hi[d]
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc.sqrt()
    }

    /// Clamp `p` into the closed zone (nearest point of the box).
    pub fn clamp_point(&self, p: &Point) -> Point {
        let mut q = *p;
        for d in 0..self.dim() {
            q[d] = q[d].clamp(self.lo[d], self.hi[d]);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(s: &[f64]) -> Point {
        ResVec::from_slice(s)
    }

    #[test]
    fn unit_zone_contains_everything() {
        let z = Zone::unit(2);
        assert!(z.contains(&pt(&[0.0, 0.0])));
        assert!(z.contains(&pt(&[0.5, 0.999])));
        assert!(z.contains(&pt(&[1.0, 1.0]))); // top face inclusive
        assert_eq!(z.volume(), 1.0);
        assert_eq!(z.center(), pt(&[0.5, 0.5]));
    }

    #[test]
    fn split_partitions_exactly() {
        let z = Zone::unit(2);
        let (a, b) = z.split(0);
        assert_eq!(a.hi()[0], 0.5);
        assert_eq!(b.lo()[0], 0.5);
        assert!(a.contains(&pt(&[0.49, 0.5])));
        assert!(!a.contains(&pt(&[0.5, 0.5]))); // half-open interior boundary
        assert!(b.contains(&pt(&[0.5, 0.5])));
        assert!((a.volume() + b.volume() - z.volume()).abs() < 1e-12);
    }

    #[test]
    fn merge_is_inverse_of_split() {
        let z = Zone::new(pt(&[0.25, 0.5]), pt(&[0.5, 1.0]));
        for d in 0..2 {
            let (a, b) = z.split(d);
            assert_eq!(a.merge(&b), Some(z));
            assert_eq!(b.merge(&a), Some(z));
        }
    }

    #[test]
    fn merge_rejects_incompatible_boxes() {
        let z = Zone::unit(2);
        let (a, b) = z.split(0);
        let (a1, _a2) = a.split(1);
        assert_eq!(a1.merge(&b), None); // differ in two dims
                                        // Abutting boxes with identical cross-sections DO merge (union box),
                                        // even when they are not the two halves of one split.
        let (b1, _b2) = b.split(0);
        let merged = a.merge(&b1).expect("compatible abutting boxes merge");
        assert_eq!(merged.lo()[0], 0.0);
        assert_eq!(merged.hi()[0], 0.75);
        // Mismatched cross-sections never merge.
        let (short, _) = b.split(1); // right half, lower y only
        assert_eq!(a.merge(&short), None);
    }

    #[test]
    fn overlaps_box_matches_fig1_intuition() {
        // Query box = positive orthant from v; zones crossing it overlap.
        let (left, right) = Zone::unit(2).split(0);
        let v = pt(&[0.6, 0.3]);
        let one = pt(&[1.0, 1.0]);
        assert!(!left.overlaps_box(&v, &one));
        assert!(right.overlaps_box(&v, &one));
    }

    #[test]
    fn dist_to_point_zero_inside() {
        let z = Zone::new(pt(&[0.0, 0.0]), pt(&[0.5, 0.5]));
        assert_eq!(z.dist_to_point(&pt(&[0.25, 0.25])), 0.0);
        assert!((z.dist_to_point(&pt(&[1.0, 0.25])) - 0.5).abs() < 1e-12);
        let corner = z.dist_to_point(&pt(&[1.0, 1.0]));
        assert!((corner - (0.5f64.powi(2) * 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn clamp_point_projects_onto_box() {
        let z = Zone::new(pt(&[0.0, 0.0]), pt(&[0.5, 0.5]));
        assert_eq!(z.clamp_point(&pt(&[0.9, 0.2])), pt(&[0.5, 0.2]));
        assert_eq!(z.clamp_point(&pt(&[0.1, 0.2])), pt(&[0.1, 0.2]));
    }

    #[test]
    fn ranges_overlap_is_symmetric() {
        let (a, b) = Zone::unit(2).split(0);
        assert!(!a.ranges_overlap(&b, 0));
        assert!(!b.ranges_overlap(&a, 0));
        assert!(a.ranges_overlap(&b, 1));
    }

    #[test]
    #[should_panic]
    fn degenerate_zone_rejected() {
        let _ = Zone::new(pt(&[0.5, 0.0]), pt(&[0.5, 1.0]));
    }
}
