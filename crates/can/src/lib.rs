//! Content Addressable Network (CAN) substrate.
//!
//! Implements the d-dimensional CAN overlay of Ratnasamy et al. (SIGCOMM'01)
//! as required by the paper: zone partitioning of the unit box `[0,1]^d`,
//! node join by zone split, node departure with takeover via the **binary
//! partition tree** (the paper's §IV-B "background zone reassignment
//! algorithm"), adjacency-based neighbor tables with the paper's
//! positive/negative orientation, and greedy coordinate routing.
//!
//! Unlike the original CAN, the key space here is **not** a torus: the
//! paper's index diffusion is directional ("backward", toward the origin)
//! and probes stop "at the edge of the CAN space" (§III-A), which requires a
//! bounded, ordered space.
//!
//! The structural operations (join/leave) mutate a global [`CanOverlay`]
//! atomically, PeerSim-style; the *data plane* (state updates, queries,
//! index diffusion) is message-simulated by the overlay protocol crates on
//! top. See DESIGN.md §2 for why this split preserves the paper's
//! evaluation semantics.

pub mod neighbors;
pub mod overlay;
pub mod routing;
pub mod tree;
pub mod zone;

pub use neighbors::{adjacency, is_negative_direction, Adjacency};
pub use overlay::{CanOverlay, NeighborEntry};
pub use routing::{greedy_next_hop, greedy_next_hop_filtered, route_path, RouteOutcome};
pub use tree::PartitionTree;
pub use zone::{Point, Zone};
