//! The global CAN overlay registry: zones + neighbor tables.
//!
//! `CanOverlay` plays the role PeerSim's network container plays in the
//! paper's simulation: it owns the authoritative zone assignment (backed by
//! the [`PartitionTree`]) and maintains each node's neighbor table
//! incrementally across joins and departures. Protocol crates read
//! neighbors/zones from here and exchange *messages* through the simulator —
//! the registry itself never performs discovery.
//!
//! Incremental-maintenance correctness argument (also exercised by the
//! property tests): a zone created by a split is contained in the parent
//! zone, so its neighbors are a subset of the parent's neighbors plus its
//! sibling; a zone created by a merge is the union of the pair, so its
//! neighbors are a subset of the union of the pair's neighbors; a takeover
//! transfers a zone unchanged. Hence re-testing adjacency against the old
//! neighbor lists of the affected nodes is exhaustive.

use crate::neighbors::adjacency;
use crate::tree::PartitionTree;
use crate::zone::{Point, Zone};
use rand::{Rng, RngExt};
use soc_types::{NodeId, ResVec};
use std::collections::BTreeSet;

/// One entry of a node's neighbor table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeighborEntry {
    /// The adjacent node.
    pub node: NodeId,
    /// Dimension along which the zones abut.
    pub dim: usize,
    /// `true` when `node` lies on the *positive* side (it is our positive
    /// neighbor along `dim`).
    pub positive: bool,
}

/// Global CAN state: who owns which zone, and who neighbors whom.
pub struct CanOverlay {
    tree: PartitionTree,
    zones: Vec<Option<Zone>>,
    neighbors: Vec<Vec<NeighborEntry>>,
    alive: Vec<bool>,
    n_alive: usize,
    dim: usize,
    /// Structure epoch: bumped on every join/leave (the only operations
    /// that change zones or neighbor tables). Routing caches compare this
    /// to decide whether a memoized next hop is still valid.
    epoch: u64,
}

impl CanOverlay {
    /// Bootstrap an overlay of dimension `dim` with capacity for `max_nodes`
    /// node ids; node `first` owns the whole space.
    pub fn new(dim: usize, max_nodes: usize, first: NodeId) -> Self {
        let mut zones = vec![None; max_nodes];
        let mut alive = vec![false; max_nodes];
        zones[first.idx()] = Some(Zone::unit(dim));
        alive[first.idx()] = true;
        CanOverlay {
            tree: PartitionTree::new(dim, first),
            zones,
            neighbors: vec![Vec::new(); max_nodes],
            alive,
            n_alive: 1,
            dim,
            epoch: 0,
        }
    }

    /// Bootstrap with nodes `0..n` joining at rng-chosen points.
    pub fn bootstrap<R: Rng>(dim: usize, n: usize, max_nodes: usize, rng: &mut R) -> Self {
        assert!(n >= 1 && n <= max_nodes);
        let mut ov = Self::new(dim, max_nodes, NodeId(0));
        for i in 1..n {
            let p = random_point(dim, rng);
            ov.join(NodeId(i as u32), &p);
        }
        ov
    }

    /// Key-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.n_alive
    }

    /// True when the overlay has no live node (never happens in scenarios).
    pub fn is_empty(&self) -> bool {
        self.n_alive == 0
    }

    /// Is `node` currently part of the overlay?
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.idx()).copied().unwrap_or(false)
    }

    /// Zone owned by `node`.
    #[inline]
    pub fn zone(&self, node: NodeId) -> Option<&Zone> {
        self.zones[node.idx()].as_ref()
    }

    /// The node whose zone contains `p` (the paper's "duty node" for a state
    /// vector or query vector at `p`).
    pub fn owner_of(&self, p: &Point) -> NodeId {
        self.tree.find_leaf(p)
    }

    /// Neighbor table of `node`.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NeighborEntry] {
        &self.neighbors[node.idx()]
    }

    /// Iterate over live node ids.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Access the underlying partition tree (read-only).
    pub fn tree(&self) -> &PartitionTree {
        &self.tree
    }

    /// Structure epoch: changes exactly when any zone or neighbor table
    /// changes (every join/leave). Two reads of overlay state made under
    /// the same epoch are guaranteed to observe identical structure.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Remove any existing mutual entries between `a` and `b`, then re-add
    /// them if their current zones are adjacent.
    fn retest(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        self.neighbors[a.idx()].retain(|e| e.node != b);
        self.neighbors[b.idx()].retain(|e| e.node != a);
        let (Some(za), Some(zb)) = (self.zones[a.idx()], self.zones[b.idx()]) else {
            return;
        };
        if let Some(adj) = adjacency(&za, &zb) {
            // `adj.first_is_positive` describes `a` relative to `b`.
            self.neighbors[a.idx()].push(NeighborEntry {
                node: b,
                dim: adj.dim,
                positive: !adj.first_is_positive,
            });
            self.neighbors[b.idx()].push(NeighborEntry {
                node: a,
                dim: adj.dim,
                positive: adj.first_is_positive,
            });
        }
    }

    fn sort_table(&mut self, node: NodeId) {
        self.neighbors[node.idx()].sort_by_key(|e| (e.dim, e.positive, e.node));
    }

    /// `newcomer` joins at point `p`: the owner of the enclosing zone splits.
    /// Returns the node that split its zone.
    ///
    /// # Panics
    /// Panics if `newcomer` is already alive or its id exceeds capacity.
    pub fn join(&mut self, newcomer: NodeId, p: &Point) -> NodeId {
        assert!(!self.is_alive(newcomer), "{newcomer} already alive");
        self.epoch += 1;
        let (owner, new_zone, owner_zone) = self.tree.join(newcomer, p);
        let old_nb: Vec<NodeId> = self.neighbors[owner.idx()].iter().map(|e| e.node).collect();

        self.zones[newcomer.idx()] = Some(new_zone);
        self.zones[owner.idx()] = Some(owner_zone);
        self.alive[newcomer.idx()] = true;
        self.n_alive += 1;
        self.neighbors[newcomer.idx()].clear();

        for v in &old_nb {
            self.retest(owner, *v);
            self.retest(newcomer, *v);
        }
        self.retest(owner, newcomer);
        self.sort_table(owner);
        self.sort_table(newcomer);
        for v in old_nb {
            self.sort_table(v);
        }
        owner
    }

    /// `node` departs; zones are reassigned per the partition-tree takeover.
    /// Returns the reassignments `(node, new_zone)` that took place.
    ///
    /// # Panics
    /// Panics if `node` is not alive, or if it is the last live node.
    pub fn leave(&mut self, node: NodeId) -> Vec<(NodeId, Zone)> {
        assert!(self.is_alive(node), "{node} not alive");
        assert!(self.n_alive > 1, "cannot drain the overlay");
        self.epoch += 1;

        // Collect candidate sets *before* mutating zones.
        let dep_nb: Vec<NodeId> = self.neighbors[node.idx()].iter().map(|e| e.node).collect();
        let reass = self
            .tree
            .leave(node)
            .expect("n_alive > 1 implies non-final leave");

        let mut cand: BTreeSet<NodeId> = dep_nb.iter().copied().collect();
        for (n, _) in &reass {
            cand.insert(*n);
            for e in &self.neighbors[n.idx()] {
                cand.insert(e.node);
            }
        }
        cand.remove(&node);

        // Retire the departed node.
        for v in &dep_nb {
            self.neighbors[v.idx()].retain(|e| e.node != node);
        }
        self.neighbors[node.idx()].clear();
        self.zones[node.idx()] = None;
        self.alive[node.idx()] = false;
        self.n_alive -= 1;

        // Apply new zones, then re-test every (changed, candidate) pair.
        for (n, z) in &reass {
            self.zones[n.idx()] = Some(*z);
        }
        for (n, _) in &reass {
            // The changed node's table may contain stale entries whose
            // counterpart is being re-tested below; start clean.
            let stale: Vec<NodeId> = self.neighbors[n.idx()].iter().map(|e| e.node).collect();
            for s in stale {
                self.neighbors[s.idx()].retain(|e| e.node != *n);
            }
            self.neighbors[n.idx()].clear();
            for v in &cand {
                self.retest(*n, *v);
            }
        }
        if reass.len() == 2 {
            self.retest(reass[0].0, reass[1].0);
        }
        for v in &cand {
            self.sort_table(*v);
        }
        for (n, _) in &reass {
            self.sort_table(*n);
        }
        reass
    }

    /// Exhaustive validation of zone/neighbor consistency (test use).
    pub fn validate(&self) -> Result<(), String> {
        self.tree.validate()?;
        // Zones match the tree.
        for n in self.live_nodes() {
            let z = self.zones[n.idx()].ok_or(format!("{n} alive without zone"))?;
            if self.tree.zone_of(n) != Some(&z) {
                return Err(format!("{n} zone desynced from tree"));
            }
        }
        // Neighbor tables are exactly the adjacency relation.
        let live: Vec<NodeId> = self.live_nodes().collect();
        for &a in &live {
            let za = self.zones[a.idx()].unwrap();
            let mut expect: Vec<NeighborEntry> = Vec::new();
            for &b in &live {
                if a == b {
                    continue;
                }
                let zb = self.zones[b.idx()].unwrap();
                if let Some(adj) = adjacency(&za, &zb) {
                    expect.push(NeighborEntry {
                        node: b,
                        dim: adj.dim,
                        positive: !adj.first_is_positive,
                    });
                }
            }
            expect.sort_by_key(|e| (e.dim, e.positive, e.node));
            if expect != self.neighbors[a.idx()] {
                return Err(format!(
                    "{a} neighbor table mismatch: have {:?}, want {:?}",
                    self.neighbors[a.idx()],
                    expect
                ));
            }
        }
        Ok(())
    }
}

/// Uniform random point in `[0,1)^dim`.
pub fn random_point<R: Rng>(dim: usize, rng: &mut R) -> Point {
    let mut p = ResVec::zeros(dim);
    for d in 0..dim {
        p[d] = rng.random::<f64>();
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bootstrap_small_overlay_is_consistent() {
        let mut rng = SmallRng::seed_from_u64(1);
        let ov = CanOverlay::bootstrap(2, 16, 32, &mut rng);
        assert_eq!(ov.len(), 16);
        ov.validate().unwrap();
    }

    #[test]
    fn owner_of_agrees_with_zones() {
        let mut rng = SmallRng::seed_from_u64(2);
        let ov = CanOverlay::bootstrap(3, 25, 32, &mut rng);
        for _ in 0..200 {
            let p = random_point(3, &mut rng);
            let owner = ov.owner_of(&p);
            assert!(ov.zone(owner).unwrap().contains(&p));
        }
    }

    #[test]
    fn neighbor_tables_track_churn() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ov = CanOverlay::bootstrap(2, 20, 64, &mut rng);
        ov.validate().unwrap();
        // Interleave joins and leaves.
        for round in 0..10u32 {
            let newcomer = NodeId(20 + round);
            ov.join(newcomer, &random_point(2, &mut rng));
            let victim = ov
                .live_nodes()
                .nth((round as usize * 3) % ov.len())
                .unwrap();
            ov.leave(victim);
            ov.validate()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
    }

    #[test]
    fn leave_rejects_last_node() {
        let ov = CanOverlay::new(2, 4, NodeId(0));
        assert_eq!(ov.len(), 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ov2 = CanOverlay::new(2, 4, NodeId(0));
            ov2.leave(NodeId(0));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn neighbors_are_mutual() {
        let mut rng = SmallRng::seed_from_u64(4);
        let ov = CanOverlay::bootstrap(2, 30, 32, &mut rng);
        for a in ov.live_nodes() {
            for e in ov.neighbors(a) {
                let back = ov
                    .neighbors(e.node)
                    .iter()
                    .find(|b| b.node == a)
                    .expect("mutual entry");
                assert_eq!(back.dim, e.dim);
                assert_ne!(back.positive, e.positive);
            }
        }
    }

    #[test]
    fn five_dim_overlay_works() {
        let mut rng = SmallRng::seed_from_u64(5);
        let ov = CanOverlay::bootstrap(5, 64, 64, &mut rng);
        ov.validate().unwrap();
        // Every live node has at least one neighbor in a 64-node overlay.
        for n in ov.live_nodes() {
            assert!(!ov.neighbors(n).is_empty());
        }
    }
}
