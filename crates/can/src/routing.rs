//! Greedy CAN coordinate routing.
//!
//! Classic CAN forwards a message to the neighbor whose zone is closest to
//! the destination point, giving `O(d · n^{1/d})` expected hops. INSCAN
//! (`soc-inscan`) layers `2^k` finger jumps on top to reach `O(log2 n)`;
//! both use this module's greedy step as the local fallback.

use crate::overlay::CanOverlay;
use crate::zone::Point;
use soc_types::NodeId;

/// Result of walking a route to the zone containing a target point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteOutcome {
    /// The node whose zone contains the target, if routing converged.
    pub owner: Option<NodeId>,
    /// Nodes visited after the source (one per hop).
    pub path: Vec<NodeId>,
}

impl RouteOutcome {
    /// Number of message hops taken.
    pub fn hops(&self) -> usize {
        self.path.len()
    }
}

/// One greedy step from `current` toward `target`.
///
/// Returns `None` when `current`'s zone already contains `target`.
/// Ties are broken by node id so routing is deterministic.
pub fn greedy_next_hop(ov: &CanOverlay, current: NodeId, target: &Point) -> Option<NodeId> {
    let zone = ov.zone(current).expect("routing from a dead node");
    if zone.contains(target) {
        return None;
    }
    greedy_next_hop_filtered(ov, current, target, |n| {
        // Plain greedy routing runs against a consistent overlay: a
        // neighbor entry without a zone means the neighbor tables are
        // corrupt, and silently skipping it would hide that (the filtered
        // walk below skips zone-less entries by design, which is correct
        // only for the route-around-churn callers).
        debug_assert!(ov.zone(n).is_some(), "neighbor table points at dead node");
        true
    })
}

/// The greedy step over the subset of `current`'s neighbors accepted by
/// `accept` — the shared fallback behind plain greedy routing and the
/// protocols' route-around-a-dead-hop retransmission paths (which exclude
/// the observed-dead node and anything the failure detector flagged).
///
/// The caller must already have established that `current`'s zone does not
/// contain `target`. Neighbors without a zone (mid-churn staleness) are
/// skipped; ties break by node id. Returns `None` when no neighbor is
/// accepted (an isolated sender).
pub fn greedy_next_hop_filtered(
    ov: &CanOverlay,
    current: NodeId,
    target: &Point,
    mut accept: impl FnMut(NodeId) -> bool,
) -> Option<NodeId> {
    let mut best: Option<(f64, NodeId)> = None;
    for e in ov.neighbors(current) {
        if !accept(e.node) {
            continue;
        }
        let Some(nz) = ov.zone(e.node) else {
            continue;
        };
        let d = nz.dist_to_point(target);
        let better = match best {
            None => true,
            Some((bd, bn)) => d < bd || (d == bd && e.node < bn),
        };
        if better {
            best = Some((d, e.node));
        }
    }
    best.map(|(_, n)| n)
}

/// Walk the full greedy route from `from` to the owner of `target`.
///
/// `max_hops` bounds the walk (greedy routing on a box partition always
/// converges, but the bound protects against pathological mid-churn states).
pub fn route_path(ov: &CanOverlay, from: NodeId, target: &Point, max_hops: usize) -> RouteOutcome {
    let mut path = Vec::new();
    let mut cur = from;
    for _ in 0..max_hops {
        match greedy_next_hop(ov, cur, target) {
            None => {
                return RouteOutcome {
                    owner: Some(cur),
                    path,
                }
            }
            Some(next) => {
                path.push(next);
                cur = next;
            }
        }
    }
    // Did not converge within the budget.
    if ov.zone(cur).is_some_and(|z| z.contains(target)) {
        RouteOutcome {
            owner: Some(cur),
            path,
        }
    } else {
        RouteOutcome { owner: None, path }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::random_point;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn routing_reaches_the_owner() {
        let mut rng = SmallRng::seed_from_u64(11);
        let ov = CanOverlay::bootstrap(2, 100, 128, &mut rng);
        for _ in 0..200 {
            let p = random_point(2, &mut rng);
            let from = ov.live_nodes().next().unwrap();
            let out = route_path(&ov, from, &p, 500);
            let owner = out.owner.expect("route converged");
            assert_eq!(owner, ov.owner_of(&p));
        }
    }

    #[test]
    fn route_from_owner_is_zero_hops() {
        let mut rng = SmallRng::seed_from_u64(12);
        let ov = CanOverlay::bootstrap(2, 50, 64, &mut rng);
        let p = random_point(2, &mut rng);
        let owner = ov.owner_of(&p);
        let out = route_path(&ov, owner, &p, 100);
        assert_eq!(out.owner, Some(owner));
        assert_eq!(out.hops(), 0);
    }

    #[test]
    fn hop_count_scales_like_can_bound() {
        // Expected CAN hops ~ (d/4) n^{1/d}; allow a generous constant.
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 256;
        let ov = CanOverlay::bootstrap(2, n, 300, &mut rng);
        let bound = 8.0 * (n as f64).powf(0.5);
        let mut total = 0usize;
        let trials = 100;
        for _ in 0..trials {
            let p = random_point(2, &mut rng);
            let from = NodeId(0);
            let out = route_path(&ov, from, &p, 10_000);
            assert!(out.owner.is_some());
            total += out.hops();
        }
        let avg = total as f64 / trials as f64;
        assert!(avg < bound, "avg hops {avg} exceeds CAN bound {bound}");
    }

    #[test]
    fn routing_works_in_five_dims() {
        let mut rng = SmallRng::seed_from_u64(14);
        let ov = CanOverlay::bootstrap(5, 128, 128, &mut rng);
        for _ in 0..100 {
            let p = random_point(5, &mut rng);
            let out = route_path(&ov, NodeId(3), &p, 1_000);
            assert_eq!(out.owner, Some(ov.owner_of(&p)));
        }
    }

    #[test]
    fn deterministic_paths() {
        let mut rng = SmallRng::seed_from_u64(15);
        let ov = CanOverlay::bootstrap(3, 64, 64, &mut rng);
        let p = random_point(3, &mut rng);
        let a = route_path(&ov, NodeId(1), &p, 1_000);
        let b = route_path(&ov, NodeId(1), &p, 1_000);
        assert_eq!(a, b);
    }
}
