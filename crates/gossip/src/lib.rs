//! Newscast gossip — the unstructured-P2P baseline (§IV-A).
//!
//! *"Newscast gossip protocol is a typical unstructured P2P solution, under
//! which neighbors of each node are randomly changed based on the Newscast
//! model over time to enhance message diffusion range and the fan-out
//! degree (i.e., the number of neighbors) is limited to `log2(n)` to avoid
//! excessive network traffic."*
//!
//! Each node keeps a partial view of `(peer, availability, heartbeat)`
//! entries capped at `⌈log2 n⌉`. Periodically it picks a random view peer
//! and the two exchange views, each keeping the freshest entries — the
//! classic Newscast shuffle. Discovery is a TTL-bounded random walk over
//! views: every visited node reports its fresh qualified entries to the
//! requester.

use rand::{Rng, RngExt};
use soc_net::MsgKind;
use soc_overlay::{Candidate, Ctx, DiscoveryOverlay, QueryRequest, QueryVerdict};
use soc_types::{NodeId, QueryId, ResVec, SimMillis};

const T_EXCHANGE: u32 = 0;

/// One partial-view entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ViewEntry {
    /// The peer this entry describes.
    pub peer: NodeId,
    /// Its availability when the entry was created.
    pub avail: ResVec,
    /// Creation time at the *origin* (freshness for merge).
    pub heartbeat: SimMillis,
}

/// Newscast configuration.
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// View size cap; `None` = `⌈log2 n⌉` per the paper.
    pub view_cap: Option<usize>,
    /// Exchange cycle.
    pub exchange_ms: SimMillis,
    /// Entry freshness horizon when answering queries.
    pub entry_ttl_ms: SimMillis,
    /// Query random-walk TTL. `None` = 1: the requester checks its own
    /// partial view and the walk visits two more random peers — the same
    /// "single query message" budget §I imposes on every protocol. (The
    /// long-walk variant is an ablation knob.)
    pub query_ttl: Option<usize>,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            view_cap: None,
            // Same information cadence as the DHT protocols' 400 s state
            // updates — the paper equalizes the protocols' traffic, and the
            // gossip entries are the analogue of state records.
            exchange_ms: 400_000,
            entry_ttl_ms: 600_000,
            query_ttl: None,
        }
    }
}

impl GossipConfig {
    /// Multiply periods/TTLs by `f` (see `PidCanConfig::scale_cycles`).
    pub fn scale_cycles(mut self, f: f64) -> Self {
        let s = |ms: SimMillis| -> SimMillis { ((ms as f64 * f).round() as SimMillis).max(1) };
        self.exchange_ms = s(self.exchange_ms);
        self.entry_ttl_ms = s(self.entry_ttl_ms);
        self
    }
}

/// Newscast wire messages.
#[derive(Clone, Debug)]
pub enum GossipMsg {
    /// View exchange: the sender's view (plus its own fresh entry).
    /// `reply = true` asks the receiver to send its view back.
    Exchange {
        /// Entries offered.
        entries: Vec<ViewEntry>,
        /// Whether the receiver should reply with its own view.
        reply: bool,
    },
    /// TTL-bounded discovery walk.
    Query {
        /// Query identity.
        qid: QueryId,
        /// Requester (receives results).
        requester: NodeId,
        /// Demand vector.
        demand: ResVec,
        /// Results still wanted.
        wanted: usize,
        /// Remaining hops.
        ttl: usize,
    },
    /// Results reported back to the requester.
    Found {
        /// Query identity.
        qid: QueryId,
        /// Qualified view entries.
        candidates: Vec<Candidate>,
    },
    /// Walk ended without satisfying the requester.
    Exhausted {
        /// Query identity.
        qid: QueryId,
    },
}

/// The Newscast protocol state.
pub struct Newscast {
    cfg: GossipConfig,
    views: Vec<Vec<ViewEntry>>,
    view_cap: usize,
    query_ttl: usize,
}

impl Newscast {
    /// Build for `n` expected nodes with id capacity `max_nodes`.
    pub fn new(cfg: GossipConfig, n: usize, max_nodes: usize) -> Self {
        let log2n = (n.max(2) as f64).log2().ceil() as usize;
        Newscast {
            cfg,
            views: vec![Vec::new(); max_nodes],
            view_cap: cfg.view_cap.unwrap_or(log2n).max(1),
            query_ttl: cfg.query_ttl.unwrap_or(2),
        }
    }

    /// Current view of `node` (diagnostics).
    pub fn view(&self, node: NodeId) -> &[ViewEntry] {
        &self.views[node.idx()]
    }

    /// View size cap in effect.
    pub fn view_cap(&self) -> usize {
        self.view_cap
    }

    /// Merge `incoming` into `node`'s view: freshest entry per peer wins,
    /// then keep the `view_cap` freshest overall (Newscast rule).
    fn merge_view(&mut self, node: NodeId, incoming: &[ViewEntry]) {
        let view = &mut self.views[node.idx()];
        for e in incoming {
            if e.peer == node {
                continue; // never keep an entry about ourselves
            }
            match view.iter_mut().find(|v| v.peer == e.peer) {
                Some(v) => {
                    if e.heartbeat > v.heartbeat {
                        *v = *e;
                    }
                }
                None => view.push(*e),
            }
        }
        view.sort_by_key(|v| (std::cmp::Reverse(v.heartbeat), v.peer));
        view.truncate(self.view_cap);
    }

    /// The sender's offer: its view plus a fresh self-entry.
    fn offer(&self, ctx: &Ctx<'_, GossipMsg>, node: NodeId) -> Vec<ViewEntry> {
        let mut entries = self.views[node.idx()].clone();
        entries.push(ViewEntry {
            peer: node,
            avail: ctx.host.availability(node),
            heartbeat: ctx.now,
        });
        entries
    }

    /// Fresh entries in `node`'s view qualifying `demand`.
    fn qualified(&self, node: NodeId, demand: &ResVec, now: SimMillis) -> Vec<Candidate> {
        self.views[node.idx()]
            .iter()
            .filter(|e| now.saturating_sub(e.heartbeat) <= self.cfg.entry_ttl_ms)
            .filter(|e| e.avail.dominates(demand))
            .map(|e| Candidate {
                node: e.peer,
                avail: e.avail,
            })
            .collect()
    }

    fn random_view_peer<R: Rng>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        let v = &self.views[node.idx()];
        if v.is_empty() {
            None
        } else {
            Some(v[rng.random_range(0..v.len())].peer)
        }
    }

    /// Continue (or end) a query walk from `node`.
    #[allow(clippy::too_many_arguments)]
    fn walk_on(
        &mut self,
        ctx: &mut Ctx<'_, GossipMsg>,
        node: NodeId,
        qid: QueryId,
        requester: NodeId,
        demand: ResVec,
        wanted: usize,
        ttl: usize,
    ) {
        if wanted == 0 {
            return;
        }
        if ttl == 0 {
            if node == requester {
                ctx.query_done(qid, QueryVerdict::Exhausted);
            } else {
                ctx.send(
                    node,
                    requester,
                    MsgKind::FoundNotify,
                    GossipMsg::Exhausted { qid },
                );
            }
            return;
        }
        match self.random_view_peer(node, ctx.rng) {
            Some(next) => ctx.send(
                node,
                next,
                MsgKind::DutyQuery,
                GossipMsg::Query {
                    qid,
                    requester,
                    demand,
                    wanted,
                    ttl: ttl - 1,
                },
            ),
            None => {
                // Empty view: dead end.
                if node == requester {
                    ctx.query_done(qid, QueryVerdict::Exhausted);
                } else {
                    ctx.send(
                        node,
                        requester,
                        MsgKind::FoundNotify,
                        GossipMsg::Exhausted { qid },
                    );
                }
            }
        }
    }

    fn bootstrap_view(&mut self, ctx: &mut Ctx<'_, GossipMsg>, node: NodeId) {
        // Seed with a few random live peers (a tracker/bootstrap service).
        let live: Vec<NodeId> = ctx.can.live_nodes().filter(|&p| p != node).collect();
        if live.is_empty() {
            return;
        }
        for _ in 0..self.view_cap.min(4) {
            let p = live[ctx.rng.random_range(0..live.len())];
            let avail = ctx.host.availability(p);
            self.merge_view(
                node,
                &[ViewEntry {
                    peer: p,
                    avail,
                    heartbeat: ctx.now,
                }],
            );
        }
    }
}

impl DiscoveryOverlay for Newscast {
    type Msg = GossipMsg;

    fn name(&self) -> &'static str {
        "Newscast"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, GossipMsg>) {
        let nodes: Vec<NodeId> = ctx.can.live_nodes().collect();
        for node in nodes {
            self.bootstrap_view(ctx, node);
            let phase = ctx.rng.random_range(0..self.cfg.exchange_ms.max(1));
            ctx.timer(node, T_EXCHANGE, phase);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, GossipMsg>, node: NodeId, msg: GossipMsg) {
        match msg {
            GossipMsg::Exchange { entries, reply } => {
                if reply {
                    let mine = self.offer(ctx, node);
                    // Reply to the freshest sender entry (the initiator put
                    // itself in the offer).
                    if let Some(initiator) = entries.iter().max_by_key(|e| e.heartbeat) {
                        ctx.send(
                            node,
                            initiator.peer,
                            MsgKind::GossipExchange,
                            GossipMsg::Exchange {
                                entries: mine,
                                reply: false,
                            },
                        );
                    }
                }
                self.merge_view(node, &entries);
            }
            GossipMsg::Query {
                qid,
                requester,
                demand,
                wanted,
                ttl,
            } => {
                let found = self.qualified(node, &demand, ctx.now);
                let still_wanted = wanted.saturating_sub(found.len());
                if !found.is_empty() {
                    if node == requester {
                        ctx.query_results(qid, found);
                    } else {
                        ctx.send(
                            node,
                            requester,
                            MsgKind::FoundNotify,
                            GossipMsg::Found {
                                qid,
                                candidates: found,
                            },
                        );
                    }
                }
                self.walk_on(ctx, node, qid, requester, demand, still_wanted, ttl);
            }
            GossipMsg::Found { qid, candidates } => {
                ctx.query_results(qid, candidates);
            }
            GossipMsg::Exhausted { qid } => {
                ctx.query_done(qid, QueryVerdict::Exhausted);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GossipMsg>, node: NodeId, kind: u32) {
        debug_assert_eq!(kind, T_EXCHANGE);
        if let Some(peer) = self.random_view_peer(node, ctx.rng) {
            let offer = self.offer(ctx, node);
            ctx.send(
                node,
                peer,
                MsgKind::GossipExchange,
                GossipMsg::Exchange {
                    entries: offer,
                    reply: true,
                },
            );
        } else {
            self.bootstrap_view(ctx, node);
        }
        ctx.timer(node, T_EXCHANGE, self.cfg.exchange_ms);
    }

    fn start_query(&mut self, ctx: &mut Ctx<'_, GossipMsg>, req: QueryRequest) {
        // Check our own view first, then walk.
        let found = self.qualified(req.requester, &req.demand, ctx.now);
        if !found.is_empty() {
            ctx.query_results(req.qid, found.clone());
        }
        let still_wanted = req.wanted.saturating_sub(found.len());
        self.walk_on(
            ctx,
            req.requester,
            req.qid,
            req.requester,
            req.demand,
            still_wanted,
            self.query_ttl,
        );
    }

    fn on_node_joined(&mut self, ctx: &mut Ctx<'_, GossipMsg>, node: NodeId) {
        self.views[node.idx()].clear();
        self.bootstrap_view(ctx, node);
        let phase = ctx.rng.random_range(0..self.cfg.exchange_ms.max(1));
        ctx.timer(node, T_EXCHANGE, phase);
    }

    fn on_node_left(&mut self, _ctx: &mut Ctx<'_, GossipMsg>, node: NodeId) {
        self.views[node.idx()].clear();
        // Stale entries about the departed peer age out of other views.
    }

    fn on_message_dropped(
        &mut self,
        ctx: &mut Ctx<'_, GossipMsg>,
        from: NodeId,
        to: NodeId,
        msg: GossipMsg,
    ) {
        // The sender observed `to` dead: purge it from the view; retry the
        // walk elsewhere.
        if !ctx.host.is_alive(from) {
            return;
        }
        self.views[from.idx()].retain(|e| e.peer != to);
        if let GossipMsg::Query {
            qid,
            requester,
            demand,
            wanted,
            ttl,
        } = msg
        {
            self.walk_on(ctx, from, qid, requester, demand, wanted, ttl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use soc_can::CanOverlay;
    use soc_overlay::testkit::{TestHarness, TestHost};

    const N: usize = 64;

    fn world(seed: u64) -> TestHarness<Newscast> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let can = CanOverlay::bootstrap(2, N, N, &mut rng);
        let cmax = ResVec::from_slice(&[10.0, 10.0]);
        let mut host = TestHost::uniform(N, ResVec::from_slice(&[5.0, 5.0]), cmax);
        for i in 0..N {
            let f = 0.15 + 0.8 * (i as f64 / N as f64);
            host.avails[i] = ResVec::from_slice(&[10.0 * f, 10.0 * f]);
        }
        let proto = Newscast::new(GossipConfig::default(), N, N);
        TestHarness::new(proto, can, host, seed)
    }

    #[test]
    fn views_fill_and_stay_capped() {
        let mut h = world(1);
        h.run_until(600_000);
        let cap = h.proto.view_cap();
        let mut filled = 0;
        for i in 0..N {
            let v = h.proto.view(NodeId(i as u32));
            assert!(v.len() <= cap, "view overflow: {}", v.len());
            if v.len() == cap {
                filled += 1;
            }
            // No self-entries.
            assert!(v.iter().all(|e| e.peer != NodeId(i as u32)));
        }
        assert!(filled > N / 2, "only {filled} full views");
    }

    #[test]
    fn exchanges_spread_fresh_information() {
        let mut h = world(2);
        h.run_until(600_000);
        assert!(h.stats.count(MsgKind::GossipExchange) > 0);
        // Entries should be recent (within a few exchange cycles).
        let now = h.now();
        for i in 0..N {
            for e in h.proto.view(NodeId(i as u32)) {
                assert!(now - e.heartbeat < 4 * 400_000, "stale entry survived");
            }
        }
    }

    #[test]
    fn query_walk_finds_candidates() {
        let mut h = world(3);
        h.run_until(600_000);
        let demand = ResVec::from_slice(&[2.0, 2.0]);
        let qid = QueryId(1);
        h.start_query(QueryRequest {
            qid,
            requester: NodeId(0),
            demand,
            wanted: 3,
        });
        let deadline = h.now() + 60_000;
        h.run_until(deadline);
        let results = h.results.get(&qid).cloned().unwrap_or_default();
        assert!(!results.is_empty(), "walk found nothing");
        for c in &results {
            assert!(c.avail.dominates(&demand));
        }
    }

    #[test]
    fn impossible_query_exhausts() {
        let mut h = world(4);
        h.run_until(600_000);
        let qid = QueryId(2);
        h.start_query(QueryRequest {
            qid,
            requester: NodeId(1),
            demand: ResVec::from_slice(&[9.9, 9.9]),
            wanted: 1,
        });
        let deadline = h.now() + 60_000;
        h.run_until(deadline);
        assert!(h.results.get(&qid).is_none_or(|r| r.is_empty()));
        assert_eq!(h.done.get(&qid), Some(&QueryVerdict::Exhausted));
    }

    #[test]
    fn dead_peers_are_purged_on_drop() {
        let mut h = world(5);
        h.run_until(600_000);
        // Kill half the nodes behind the protocol's back.
        for i in (0..N).step_by(2).skip(1) {
            h.host.alive[i] = false;
        }
        let qid = QueryId(3);
        h.start_query(QueryRequest {
            qid,
            requester: NodeId(0),
            demand: ResVec::from_slice(&[2.0, 2.0]),
            wanted: 2,
        });
        let deadline = h.now() + 120_000;
        h.run_until(deadline);
        let got = h.results.get(&qid).map_or(0, |r| r.len());
        let done = h.done.contains_key(&qid);
        assert!(got > 0 || done, "query hung against dead peers");
    }

    #[test]
    fn view_cap_follows_log2_n() {
        let p = Newscast::new(GossipConfig::default(), 2000, 2000);
        assert_eq!(p.view_cap(), 11); // ⌈log2 2000⌉ = 11
        let p = Newscast::new(GossipConfig::default(), 64, 64);
        assert_eq!(p.view_cap(), 6);
    }
}
