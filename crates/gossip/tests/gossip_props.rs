//! Property tests for the Newscast baseline's view algebra: merges keep
//! the freshest information, never exceed the cap, never self-reference.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use soc_can::CanOverlay;
use soc_gossip::{GossipConfig, Newscast};
use soc_overlay::testkit::{TestHarness, TestHost};
use soc_overlay::QueryRequest;
use soc_types::{NodeId, QueryId, ResVec};

fn harness(n: usize, seed: u64) -> TestHarness<Newscast> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let can = CanOverlay::bootstrap(2, n, n, &mut rng);
    let cmax = ResVec::from_slice(&[10.0, 10.0]);
    let mut host = TestHost::uniform(n, ResVec::from_slice(&[5.0, 5.0]), cmax);
    for i in 0..n {
        let f = 0.2 + 0.7 * (i as f64 / n as f64);
        host.avails[i] = ResVec::from_slice(&[10.0 * f, 10.0 * f]);
    }
    TestHarness::new(
        Newscast::new(GossipConfig::default(), n, n),
        can,
        host,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn views_never_violate_invariants(seed in 0u64..500, hours in 1u64..4) {
        let n = 48;
        let mut h = harness(n, seed);
        h.run_until(hours * 3_600_000);
        let cap = h.proto.view_cap();
        for i in 0..n {
            let me = NodeId(i as u32);
            let view = h.proto.view(me);
            prop_assert!(view.len() <= cap, "cap exceeded");
            // No self-entries, no duplicate peers.
            let mut peers: Vec<NodeId> = view.iter().map(|e| e.peer).collect();
            prop_assert!(!peers.contains(&me));
            peers.sort();
            let before = peers.len();
            peers.dedup();
            prop_assert_eq!(peers.len(), before, "duplicate peers in view");
            // Heartbeats never come from the future.
            for e in view {
                prop_assert!(e.heartbeat <= h.now());
            }
        }
    }

    #[test]
    fn queries_terminate_with_results_or_verdict(seed in 0u64..200) {
        let mut h = harness(48, seed);
        h.run_until(2 * 3_600_000);
        for (k, target) in [2.0f64, 5.0, 9.9].iter().enumerate() {
            let qid = QueryId(k as u64);
            h.start_query(QueryRequest {
                qid,
                requester: NodeId((seed % 48) as u32),
                demand: ResVec::from_slice(&[*target, *target]),
                wanted: 2,
            });
            let deadline = h.now() + 120_000;
            h.run_until(deadline);
            let got = h.results.get(&qid).map_or(0, |r| r.len());
            let done = h.done.contains_key(&qid);
            prop_assert!(got > 0 || done, "query {qid:?} neither answered nor settled");
            // Every candidate honestly dominates the demand.
            for c in h.results.get(&qid).cloned().unwrap_or_default() {
                prop_assert!(c.avail.dominates(&ResVec::from_slice(&[*target, *target])));
            }
        }
    }
}
