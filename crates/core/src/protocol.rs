//! The PID-CAN protocol: state publication, proactive index diffusion
//! (Algorithms 1–2) and the contention-minimized best-fit query
//! (Algorithms 3–5), with optional SoS and VD.

use crate::config::{DiffusionMethod, PidCanConfig};
use crate::messages::PidMsg;
use crate::pilist::PiList;
use rand::{Rng, RngExt};
use soc_can::greedy_next_hop_filtered;
use soc_inscan::{IndexTables, Router};
use soc_net::MsgKind;
use soc_overlay::{
    Candidate, Ctx, DiscoveryOverlay, Phase, QueryRequest, QueryVerdict, RecordCache, StateRecord,
};
use soc_types::{NodeId, QueryId, ResVec};
use std::collections::HashMap;

/// Timer discriminants.
const T_STATE: u32 = 0;
const T_DIFFUSE: u32 = 1;
const T_REFRESH: u32 = 2;

/// Requester-side query bookkeeping (SoS phase tracking).
#[derive(Clone, Debug)]
struct QueryState {
    requester: NodeId,
    original: ResVec,
    slacked: bool,
    found: usize,
    wanted: usize,
}

/// Query-path diagnostics (calibration/ablation visibility; not part of
/// the protocol).
#[derive(Clone, Copy, Debug, Default)]
pub struct PidDiag {
    /// Queries whose duty node had no positive neighbors to act as agents.
    pub duty_no_agents: u64,
    /// Index-agent messages handled.
    pub agent_visits: u64,
    /// Agent visits whose PIList sample came up empty.
    pub agent_pil_empty: u64,
    /// Index-jump visits.
    pub jump_visits: u64,
    /// Jump visits that found at least one qualified record.
    pub jump_hits: u64,
}

/// PID-CAN (SID/HID ± SoS ± VD) as a pluggable discovery overlay.
///
/// `Clone` exists for the sharded executor's pristine per-shard forks
/// ([`DiscoveryOverlay::fork_shard`]); it is only ever taken before
/// `on_start`, while all per-node state is empty.
#[derive(Clone)]
pub struct PidCan {
    cfg: PidCanConfig,
    tables: IndexTables,
    /// Routed-message facade: every next-hop decision (forward, re-route
    /// around a dead hop) goes through here so the `SOC_ROUTE` cache can
    /// memoize the hot (node, target) pairs of a duty-routing burst.
    router: Router,
    caches: Vec<RecordCache>,
    pilists: Vec<PiList>,
    queries: HashMap<QueryId, QueryState>,
    overlay_dim: usize,
    route_budget: u32,
    diag: PidDiag,
    /// Recycled `FoundList` buffer: `qualified_into` fills it on every
    /// duty/jump cache probe instead of allocating a fresh Vec per visit.
    found_buf: Vec<StateRecord>,
}

impl PidCan {
    /// Build an instance for a CAN overlay of `overlay_dim` dimensions
    /// holding `n` expected nodes with id capacity `max_nodes`.
    ///
    /// For the paper's SOC, `overlay_dim` is
    /// [`PidCanConfig::overlay_dim`] (5, or 6 with VD); unit tests may use
    /// smaller spaces. With VD enabled, `overlay_dim` must be one more than
    /// the resource-vector dimensionality.
    pub fn new(cfg: PidCanConfig, overlay_dim: usize, n: usize, max_nodes: usize) -> Self {
        let dim = overlay_dim;
        // Generous routing TTL: 4·log2(n) + 16 covers INSCAN detours under
        // churn while bounding worst-case wandering.
        let route_budget = 4 * (n.max(2) as f64).log2().ceil() as u32 + 16;
        PidCan {
            cfg,
            tables: IndexTables::new(dim, n, max_nodes),
            router: Router::from_env(),
            caches: vec![RecordCache::new(cfg.record_ttl_ms); max_nodes],
            pilists: vec![PiList::new(); max_nodes],
            queries: HashMap::new(),
            overlay_dim: dim,
            route_budget,
            diag: PidDiag::default(),
            found_buf: Vec::new(),
        }
    }

    /// Query-path diagnostics accumulated so far.
    pub fn diag(&self) -> PidDiag {
        self.diag
    }

    /// Configuration in use.
    pub fn config(&self) -> &PidCanConfig {
        &self.cfg
    }

    /// Read access to the finger tables (benches/diagnostics).
    pub fn tables(&self) -> &IndexTables {
        &self.tables
    }

    /// Route-cache hit/miss accounting (diagnostics; zeros under
    /// `SOC_ROUTE=scan`).
    pub fn route_cache_stats(&self) -> soc_inscan::RouteCacheStats {
        self.router.cache_stats()
    }

    /// Read access to a node's record cache (tests/diagnostics).
    pub fn cache(&self, node: NodeId) -> &RecordCache {
        &self.caches[node.idx()]
    }

    /// Read access to a node's PIList (tests/diagnostics).
    pub fn pilist(&self, node: NodeId) -> &PiList {
        &self.pilists[node.idx()]
    }

    /// Map a raw resource vector to a CAN key-space point, appending the
    /// random virtual coordinate under VD. `jitter` opts a *duty query*
    /// into corner diversification; record placement (StateUpdate) must
    /// always pass `false` so cached records stay at the node's true
    /// availability point.
    fn key_point<R: Rng>(
        &self,
        ctx_cmax: &ResVec,
        v: &ResVec,
        rng: &mut R,
        jitter: bool,
    ) -> ResVec {
        let mut p = v.normalize(ctx_cmax);
        if jitter && self.cfg.corner_jitter > 0.0 {
            // Diversify the search corner: an upward nudge keeps the duty
            // zone on the qualified side (records there satisfy a demand at
            // or below the jittered point) while spreading concurrent
            // same-demand queries over adjacent zones. RNG draws are gated
            // on the knob so jitter-off runs are bitwise unchanged.
            for d in 0..p.dim() {
                p[d] = (p[d] + rng.random::<f64>() * self.cfg.corner_jitter).min(1.0);
            }
        }
        if self.cfg.virtual_dim {
            p.push_dim(rng.random::<f64>())
        } else {
            p
        }
    }

    fn arm_node_timers(&self, ctx: &mut Ctx<'_, PidMsg>, node: NodeId) {
        // Stagger periodic timers with random phase so 2000 nodes do not
        // fire in lockstep.
        let s = ctx.rng.random_range(0..self.cfg.state_update_ms.max(1));
        let d = ctx.rng.random_range(0..self.cfg.diffusion_ms.max(1));
        let r = ctx.rng.random_range(0..self.cfg.table_refresh_ms.max(1));
        ctx.timer(node, T_STATE, s);
        ctx.timer(node, T_DIFFUSE, d);
        ctx.timer(node, T_REFRESH, r);
    }

    /// Route-or-consume for messages targeting a key-space point. Returns
    /// `true` when `node` owns the point (message consumed by caller).
    fn forward_toward(
        &mut self,
        ctx: &mut Ctx<'_, PidMsg>,
        node: NodeId,
        target: &ResVec,
        kind: MsgKind,
        msg: PidMsg,
    ) -> bool {
        let t = ctx.prof.start();
        let hop = self.router.next_hop(ctx.can, &self.tables, node, target);
        ctx.prof.stop(Phase::Route, t);
        match hop {
            None => true,
            Some(next) => {
                if ctx.host.is_suspect(node, next, ctx.now) {
                    // Defence layer: the computed next hop is on `node`'s
                    // blacklist. Detour greedily around every suspect (and
                    // the dead); an isolated sender consumes the message.
                    let detour = greedy_next_hop_filtered(ctx.can, node, target, |n| {
                        ctx.host.is_alive(n) && !ctx.host.is_suspect(node, n, ctx.now)
                    });
                    return match detour {
                        Some(next) => {
                            ctx.send(node, next, kind, msg);
                            false
                        }
                        None => true,
                    };
                }
                ctx.send(node, next, kind, msg);
                false
            }
        }
    }

    /// Retransmission path after a delivery failure: like
    /// [`Self::forward_toward`] but never picks `avoid` or a node the host
    /// layer knows to be dead (the failure detector just told us). Falls
    /// back to the closest *live* adjacent neighbor; when the sender is the
    /// closest live zone to the target it consumes the message itself
    /// (returns `true`).
    fn forward_avoiding(
        &mut self,
        ctx: &mut Ctx<'_, PidMsg>,
        node: NodeId,
        target: &ResVec,
        kind: MsgKind,
        msg: PidMsg,
        avoid: NodeId,
    ) -> bool {
        if ctx.can.zone(node).is_some_and(|z| z.contains(target)) {
            return true;
        }
        let t = ctx.prof.start();
        let hop = self.router.next_hop(ctx.can, &self.tables, node, target);
        ctx.prof.stop(Phase::Route, t);
        if let Some(next) = hop {
            if next != avoid && ctx.host.is_alive(next) && !ctx.host.is_suspect(node, next, ctx.now)
            {
                ctx.send(node, next, kind, msg);
                return false;
            }
        }
        // Greedy over live, unsuspected neighbors, excluding the dead hop.
        let next = greedy_next_hop_filtered(ctx.can, node, target, |n| {
            n != avoid && ctx.host.is_alive(n) && !ctx.host.is_suspect(node, n, ctx.now)
        });
        match next {
            Some(next) => {
                ctx.send(node, next, kind, msg);
                false
            }
            // Isolated sender: treat the message as arrived (best effort).
            None => true,
        }
    }

    /// Algorithm 1 (index-sender): diffuse `node`'s identifier because its
    /// cache is non-empty.
    fn diffuse_index(&mut self, ctx: &mut Ctx<'_, PidMsg>, node: NodeId) {
        let table = self.tables.get(node);
        match self.cfg.diffusion {
            DiffusionMethod::Hopping => {
                // One message along dimension 0 with TTL = L; relays fan out
                // the remaining dimensions (Algorithm 2).
                if let Some(t) = table.random_ninode(0, ctx.rng) {
                    ctx.send(
                        node,
                        t,
                        MsgKind::IndexDiffusion,
                        PidMsg::Index {
                            id: node,
                            dim_no: 0,
                            dim_ttl: self.cfg.fanout_l,
                        },
                    );
                }
            }
            DiffusionMethod::Spreading => {
                // The initiator picks all L same-dimension targets itself.
                for _ in 0..self.cfg.fanout_l {
                    if let Some(t) = table.random_ninode(0, ctx.rng) {
                        ctx.send(
                            node,
                            t,
                            MsgKind::IndexDiffusion,
                            PidMsg::Index {
                                id: node,
                                dim_no: 0,
                                dim_ttl: 0,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Algorithm 2 (index-relay) at `node` for `{id, dim_no, dim_ttl}`.
    fn relay_index(
        &mut self,
        ctx: &mut Ctx<'_, PidMsg>,
        node: NodeId,
        id: NodeId,
        dim_no: usize,
        dim_ttl: usize,
    ) {
        self.pilists[node.idx()].insert(id, ctx.now);
        let table = self.tables.get(node);
        match self.cfg.diffusion {
            DiffusionMethod::Hopping => {
                if dim_ttl > 1 {
                    if let Some(t) = table.random_ninode(dim_no, ctx.rng) {
                        ctx.send(
                            node,
                            t,
                            MsgKind::IndexDiffusion,
                            PidMsg::Index {
                                id,
                                dim_no,
                                dim_ttl: dim_ttl - 1,
                            },
                        );
                    }
                }
                if dim_no + 1 < self.overlay_dim {
                    if let Some(t) = table.random_ninode(dim_no + 1, ctx.rng) {
                        ctx.send(
                            node,
                            t,
                            MsgKind::IndexDiffusion,
                            PidMsg::Index {
                                id,
                                dim_no: dim_no + 1,
                                dim_ttl: self.cfg.fanout_l,
                            },
                        );
                    }
                }
            }
            DiffusionMethod::Spreading => {
                if dim_no + 1 < self.overlay_dim {
                    for _ in 0..self.cfg.fanout_l {
                        if let Some(t) = table.random_ninode(dim_no + 1, ctx.rng) {
                            ctx.send(
                                node,
                                t,
                                MsgKind::IndexDiffusion,
                                PidMsg::Index {
                                    id,
                                    dim_no: dim_no + 1,
                                    dim_ttl: 0,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    /// Deliver found candidates to the requester (locally when the finder
    /// *is* the requester).
    fn notify_found(
        &mut self,
        ctx: &mut Ctx<'_, PidMsg>,
        at: NodeId,
        qid: QueryId,
        requester: NodeId,
        candidates: Vec<Candidate>,
    ) {
        if candidates.is_empty() {
            return;
        }
        if at == requester {
            self.note_found(qid, candidates.len());
            ctx.query_results(qid, candidates);
        } else {
            ctx.send(
                at,
                requester,
                MsgKind::FoundNotify,
                PidMsg::Found { qid, candidates },
            );
        }
    }

    fn note_found(&mut self, qid: QueryId, n: usize) {
        if let Some(q) = self.queries.get_mut(&qid) {
            q.found += n;
        }
    }

    /// Algorithm 3, duty-node half: build the agent list `ι` and dispatch
    /// the first index-agent message.
    fn handle_duty(
        &mut self,
        ctx: &mut Ctx<'_, PidMsg>,
        duty: NodeId,
        qid: QueryId,
        requester: NodeId,
        demand: ResVec,
        mut delta: usize,
    ) {
        // Optionally search the duty node's own cache first (best-fit
        // records live in the zone enclosing the demand vector).
        if self.cfg.check_duty_cache {
            let mut found = std::mem::take(&mut self.found_buf);
            let t = ctx.prof.start();
            self.caches[duty.idx()].qualified_into(&demand, ctx.now, &mut found);
            ctx.prof.stop(Phase::CacheProbe, t);
            if !found.is_empty() {
                delta = delta.saturating_sub(found.len());
                let cands = found
                    .iter()
                    .map(|r| Candidate {
                        node: r.subject,
                        avail: r.avail,
                    })
                    .collect();
                self.notify_found(ctx, duty, qid, requester, cands);
            }
            self.found_buf = found;
        }
        if delta == 0 {
            self.finish_query(ctx, duty, qid, requester);
            return;
        }
        // ι: one random positive adjacent neighbor per dimension.
        let mut agents: Vec<NodeId> = Vec::new();
        for d in 0..self.overlay_dim {
            let ups: Vec<NodeId> = ctx
                .can
                .neighbors(duty)
                .iter()
                .filter(|e| e.dim == d && e.positive)
                .map(|e| e.node)
                .collect();
            if !ups.is_empty() {
                let pick = ups[ctx.rng.random_range(0..ups.len())];
                if !agents.contains(&pick) {
                    agents.push(pick);
                }
            }
        }
        if agents.is_empty() {
            self.diag.duty_no_agents += 1;
        }
        self.continue_with_agents(ctx, duty, qid, requester, demand, delta, agents);
    }

    /// "Randomly select an index agent α from ι; send the index-agent
    /// message {v, ι − α} to α" — shared by Algorithms 3–5 fallback paths.
    #[allow(clippy::too_many_arguments)]
    fn continue_with_agents(
        &mut self,
        ctx: &mut Ctx<'_, PidMsg>,
        at: NodeId,
        qid: QueryId,
        requester: NodeId,
        demand: ResVec,
        delta: usize,
        mut agents: Vec<NodeId>,
    ) {
        if agents.is_empty() {
            self.finish_query(ctx, at, qid, requester);
            return;
        }
        let i = ctx.rng.random_range(0..agents.len());
        let alpha = agents.swap_remove(i);
        ctx.send(
            at,
            alpha,
            MsgKind::IndexAgent,
            PidMsg::IndexAgent {
                qid,
                requester,
                demand,
                delta,
                agents,
            },
        );
    }

    /// "Randomly choose next index node β from list j; send index-jump
    /// message {v, δ, j − β} to β" — shared continuation.
    #[allow(clippy::too_many_arguments)]
    fn continue_jump(
        &mut self,
        ctx: &mut Ctx<'_, PidMsg>,
        at: NodeId,
        qid: QueryId,
        requester: NodeId,
        demand: ResVec,
        delta: usize,
        mut jumps: Vec<NodeId>,
        agents: Vec<NodeId>,
        budget: usize,
    ) {
        if jumps.is_empty() || budget == 0 {
            self.continue_with_agents(ctx, at, qid, requester, demand, delta, agents);
            return;
        }
        let i = ctx.rng.random_range(0..jumps.len());
        let beta = jumps.swap_remove(i);
        ctx.send(
            at,
            beta,
            MsgKind::IndexJump,
            PidMsg::IndexJump {
                qid,
                requester,
                demand,
                delta,
                jumps,
                agents,
                budget: budget - 1,
            },
        );
    }

    /// The search path died out; tell the requester (who owns the SoS
    /// retry decision).
    fn finish_query(
        &mut self,
        ctx: &mut Ctx<'_, PidMsg>,
        at: NodeId,
        qid: QueryId,
        requester: NodeId,
    ) {
        if at == requester {
            self.handle_exhausted(ctx, requester, qid);
        } else {
            ctx.send(
                at,
                requester,
                MsgKind::FoundNotify,
                PidMsg::Exhausted { qid },
            );
        }
    }

    /// Requester-side exhaustion: retry under SoS (restore the original
    /// vector), else report done.
    fn handle_exhausted(&mut self, ctx: &mut Ctx<'_, PidMsg>, requester: NodeId, qid: QueryId) {
        let Some(q) = self.queries.get(&qid) else {
            return; // stale notice for an already-settled query
        };
        if self.cfg.sos && q.slacked && q.found == 0 {
            // Restore e(t) and search again (Formula (3) fallback).
            let (original, wanted) = (q.original, q.wanted);
            if let Some(qm) = self.queries.get_mut(&qid) {
                qm.slacked = false;
            }
            self.issue_query(ctx, requester, qid, original, original, wanted);
        } else {
            self.queries.remove(&qid);
            ctx.query_done(qid, QueryVerdict::Exhausted);
        }
    }

    /// Inject a duty-query at the requester and route it toward the zone
    /// enclosing `effective` (the possibly-slacked vector).
    fn issue_query(
        &mut self,
        ctx: &mut Ctx<'_, PidMsg>,
        requester: NodeId,
        qid: QueryId,
        effective: ResVec,
        _original: ResVec,
        wanted: usize,
    ) {
        let target = {
            let cmax = *ctx.host.cmax();
            self.key_point(&cmax, &effective, ctx.rng, true)
        };
        let msg = PidMsg::DutyQuery {
            qid,
            requester,
            demand: effective,
            target,
            delta: wanted,
            hops_left: self.route_budget,
        };
        if self.forward_toward(ctx, requester, &target, MsgKind::DutyQuery, msg) {
            // Requester itself is the duty node.
            self.handle_duty(ctx, requester, qid, requester, effective, wanted);
        }
    }

    /// Componentwise uniform slack `e ⪯ e' ⪯ cmax` (Formula (3)).
    fn slack_vector<R: Rng>(demand: &ResVec, cmax: &ResVec, rng: &mut R) -> ResVec {
        let mut e = *demand;
        for d in 0..e.dim() {
            let hi = cmax[d].max(e[d]);
            e[d] += rng.random::<f64>() * (hi - e[d]);
        }
        e
    }
}

impl DiscoveryOverlay for PidCan {
    type Msg = PidMsg;

    fn name(&self) -> &'static str {
        self.cfg.label()
    }

    fn diag_string(&self) -> String {
        // Route-cache hit/miss counters are deliberately NOT in here: diag
        // feeds `RunReport::fingerprint`, which must be bitwise identical
        // across `SOC_ROUTE` backends. Read them via
        // [`PidCan::route_cache_stats`] instead.
        format!("{:?}", self.diag)
    }

    fn diag_record_match(&self, demand: &ResVec, now: soc_types::SimMillis) -> Option<bool> {
        Some(self.caches.iter().any(|c| c.has_qualified(demand, now)))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, PidMsg>) {
        // Build initial finger tables (charged as maintenance) and arm
        // per-node timers.
        let nodes: Vec<NodeId> = ctx.can.live_nodes().collect();
        self.on_start_nodes(ctx, &nodes);
    }

    fn on_start_nodes(&mut self, ctx: &mut Ctx<'_, PidMsg>, nodes: &[NodeId]) {
        for &node in nodes {
            let stats = self.tables.refresh_node(node, ctx.can, ctx.rng);
            ctx.charge(node, MsgKind::Maintenance, stats.probe_msgs);
            self.arm_node_timers(ctx, node);
        }
    }

    fn shardable(&self) -> bool {
        // Every handler at node `x` touches only `caches[x]`, `pilists[x]`
        // and `x`'s finger-table row; query bookkeeping lives at the
        // requester and `Found`/`Exhausted` are delivered there. That is
        // exactly the partition-by-node property the executor needs.
        true
    }

    fn fork_shard(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn absorb_diag(&mut self, other: &Self) {
        self.diag.duty_no_agents += other.diag.duty_no_agents;
        self.diag.agent_visits += other.diag.agent_visits;
        self.diag.agent_pil_empty += other.diag.agent_pil_empty;
        self.diag.jump_visits += other.diag.jump_visits;
        self.diag.jump_hits += other.diag.jump_hits;
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, PidMsg>, node: NodeId, msg: PidMsg) {
        match msg {
            PidMsg::StateUpdate {
                subject,
                avail,
                target,
                hops_left,
            } => {
                let consumed = {
                    let zone = ctx.can.zone(node).expect("message at dead node");
                    zone.contains(&target)
                };
                if consumed {
                    self.caches[node.idx()].insert(StateRecord {
                        subject,
                        avail,
                        stored_at: ctx.now,
                    });
                } else if hops_left > 0 {
                    let m = PidMsg::StateUpdate {
                        subject,
                        avail,
                        target,
                        hops_left: hops_left - 1,
                    };
                    if self.forward_toward(ctx, node, &target, MsgKind::StateUpdate, m) {
                        self.caches[node.idx()].insert(StateRecord {
                            subject,
                            avail,
                            stored_at: ctx.now,
                        });
                    }
                }
                // Budget exhausted: drop; the next cycle re-publishes.
            }
            PidMsg::Index {
                id,
                dim_no,
                dim_ttl,
            } => self.relay_index(ctx, node, id, dim_no, dim_ttl),
            PidMsg::DutyQuery {
                qid,
                requester,
                demand,
                target,
                delta,
                hops_left,
            } => {
                let here = ctx.can.zone(node).is_some_and(|z| z.contains(&target));
                if here {
                    self.handle_duty(ctx, node, qid, requester, demand, delta);
                } else if hops_left == 0 {
                    // Routing budget exhausted: settle at the closest node
                    // reached (best effort) rather than wandering.
                    self.handle_duty(ctx, node, qid, requester, demand, delta);
                } else {
                    let m = PidMsg::DutyQuery {
                        qid,
                        requester,
                        demand,
                        target,
                        delta,
                        hops_left: hops_left - 1,
                    };
                    if self.forward_toward(ctx, node, &target, MsgKind::DutyQuery, m) {
                        self.handle_duty(ctx, node, qid, requester, demand, delta);
                    }
                }
            }
            PidMsg::IndexAgent {
                qid,
                requester,
                demand,
                delta,
                agents,
            } => {
                // Algorithm 4: sample a jump list from the local PIList.
                let jumps = self.pilists[node.idx()].sample(
                    self.cfg.jump_sample,
                    ctx.now,
                    self.cfg.pilist_ttl_ms,
                    ctx.rng,
                );
                self.diag.agent_visits += 1;
                if jumps.is_empty() {
                    self.diag.agent_pil_empty += 1;
                }
                let budget = self.cfg.jump_budget;
                self.continue_jump(
                    ctx, node, qid, requester, demand, delta, jumps, agents, budget,
                );
            }
            PidMsg::IndexJump {
                qid,
                requester,
                demand,
                mut delta,
                mut jumps,
                agents,
                budget,
            } => {
                // Algorithm 5: search the local cache.
                let mut found = std::mem::take(&mut self.found_buf);
                let t = ctx.prof.start();
                self.caches[node.idx()].qualified_into(&demand, ctx.now, &mut found);
                ctx.prof.stop(Phase::CacheProbe, t);
                self.diag.jump_visits += 1;
                let cands: Vec<Candidate> = found
                    .iter()
                    .map(|r| Candidate {
                        node: r.subject,
                        avail: r.avail,
                    })
                    .collect();
                self.found_buf = found;
                if !cands.is_empty() {
                    self.diag.jump_hits += 1;
                    delta = delta.saturating_sub(cands.len());
                    self.notify_found(ctx, node, qid, requester, cands);
                } else if budget > 0 {
                    // §III-B1 relay: extend the chain with this index
                    // node's own positive-index knowledge.
                    for extra in self.pilists[node.idx()].sample(
                        self.cfg.jump_refill,
                        ctx.now,
                        self.cfg.pilist_ttl_ms,
                        ctx.rng,
                    ) {
                        if extra != node && !jumps.contains(&extra) {
                            jumps.push(extra);
                        }
                    }
                }
                if delta > 0 {
                    self.continue_jump(
                        ctx, node, qid, requester, demand, delta, jumps, agents, budget,
                    );
                }
            }
            PidMsg::Found { qid, candidates } => {
                self.note_found(qid, candidates.len());
                ctx.query_results(qid, candidates);
            }
            PidMsg::Exhausted { qid } => self.handle_exhausted(ctx, node, qid),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, PidMsg>, node: NodeId, kind: u32) {
        match kind {
            T_STATE => {
                let avail = ctx.host.availability(node);
                let target = {
                    let cmax = *ctx.host.cmax();
                    self.key_point(&cmax, &avail, ctx.rng, false)
                };
                let msg = PidMsg::StateUpdate {
                    subject: node,
                    avail,
                    target,
                    hops_left: self.route_budget,
                };
                if self.forward_toward(ctx, node, &target, MsgKind::StateUpdate, msg) {
                    self.caches[node.idx()].insert(StateRecord {
                        subject: node,
                        avail,
                        stored_at: ctx.now,
                    });
                }
                ctx.timer(node, T_STATE, self.cfg.state_update_ms);
            }
            T_DIFFUSE => {
                self.caches[node.idx()].purge_expired(ctx.now);
                self.pilists[node.idx()].purge(ctx.now, self.cfg.pilist_ttl_ms);
                if !self.caches[node.idx()].is_empty_at(ctx.now) {
                    self.diffuse_index(ctx, node);
                }
                ctx.timer(node, T_DIFFUSE, self.cfg.diffusion_ms);
            }
            T_REFRESH => {
                let stats = self.tables.refresh_node(node, ctx.can, ctx.rng);
                ctx.charge(node, MsgKind::Maintenance, stats.probe_msgs);
                ctx.timer(node, T_REFRESH, self.cfg.table_refresh_ms);
            }
            _ => unreachable!("unknown PID-CAN timer {kind}"),
        }
    }

    fn start_query(&mut self, ctx: &mut Ctx<'_, PidMsg>, req: QueryRequest) {
        let slacked = self.cfg.sos;
        let effective = if slacked {
            let cmax = *ctx.host.cmax();
            Self::slack_vector(&req.demand, &cmax, ctx.rng)
        } else {
            req.demand
        };
        self.queries.insert(
            req.qid,
            QueryState {
                requester: req.requester,
                original: req.demand,
                slacked,
                found: 0,
                wanted: req.wanted,
            },
        );
        self.issue_query(
            ctx,
            req.requester,
            req.qid,
            effective,
            req.demand,
            req.wanted,
        );
    }

    fn on_node_joined(&mut self, ctx: &mut Ctx<'_, PidMsg>, node: NodeId) {
        self.caches[node.idx()] = RecordCache::new(self.cfg.record_ttl_ms);
        self.pilists[node.idx()] = PiList::new();
        let stats = self.tables.refresh_node(node, ctx.can, ctx.rng);
        ctx.charge(node, MsgKind::Maintenance, stats.probe_msgs);
        self.arm_node_timers(ctx, node);
    }

    fn on_node_left(&mut self, _ctx: &mut Ctx<'_, PidMsg>, node: NodeId) {
        self.caches[node.idx()] = RecordCache::new(self.cfg.record_ttl_ms);
        self.pilists[node.idx()] = PiList::new();
        self.tables.clear_node(node);
        // Abandon queries the departed requester owned. Fingers elsewhere
        // that still point at the dead node are skipped by routing and
        // fixed by the periodic refresh / `on_zones_reassigned`.
        // soc-lint: allow(no-unordered-iter) -- per-entry removal with no cross-entry effects; visit order cannot leak
        self.queries.retain(|_, q| q.requester != node);
    }

    fn on_zones_reassigned(&mut self, ctx: &mut Ctx<'_, PidMsg>, affected: &[NodeId]) {
        // §IV-B departure maintenance: nodes whose zones changed rebuild
        // their fingers immediately (charged as maintenance traffic).
        for &node in affected {
            if ctx.host.is_alive(node) {
                let stats = self.tables.refresh_node(node, ctx.can, ctx.rng);
                ctx.charge(node, MsgKind::Maintenance, stats.probe_msgs);
            }
        }
    }

    fn on_message_dropped(
        &mut self,
        ctx: &mut Ctx<'_, PidMsg>,
        from: NodeId,
        to: NodeId,
        msg: PidMsg,
    ) {
        if !ctx.host.is_alive(from) {
            return;
        }
        match msg {
            // Re-route around the observed-dead hop. The overlay normally
            // reassigns the dead node's zone before the retry; the explicit
            // `avoid` + liveness filter also covers windows where routing
            // state still references it.
            PidMsg::StateUpdate {
                subject,
                avail,
                target,
                hops_left,
            } => {
                if hops_left == 0 {
                    return;
                }
                let m = PidMsg::StateUpdate {
                    subject,
                    avail,
                    target,
                    hops_left: hops_left - 1,
                };
                if self.forward_avoiding(ctx, from, &target, MsgKind::StateUpdate, m, to) {
                    self.caches[from.idx()].insert(StateRecord {
                        subject,
                        avail,
                        stored_at: ctx.now,
                    });
                }
            }
            PidMsg::DutyQuery {
                qid,
                requester,
                demand,
                target,
                delta,
                hops_left,
            } => {
                if hops_left == 0 {
                    self.handle_duty(ctx, from, qid, requester, demand, delta);
                    return;
                }
                let m = PidMsg::DutyQuery {
                    qid,
                    requester,
                    demand,
                    target,
                    delta,
                    hops_left: hops_left - 1,
                };
                if self.forward_avoiding(ctx, from, &target, MsgKind::DutyQuery, m, to) {
                    self.handle_duty(ctx, from, qid, requester, demand, delta);
                }
            }
            // Diffusion is best-effort.
            PidMsg::Index { .. } => {}
            // Continue the search from the sender, skipping the dead hop.
            PidMsg::IndexAgent {
                qid,
                requester,
                demand,
                delta,
                agents,
            } => self.continue_with_agents(ctx, from, qid, requester, demand, delta, agents),
            PidMsg::IndexJump {
                qid,
                requester,
                demand,
                delta,
                jumps,
                agents,
                budget,
            } => self.continue_jump(
                ctx, from, qid, requester, demand, delta, jumps, agents, budget,
            ),
            // The requester died; nothing to deliver to.
            PidMsg::Found { .. } | PidMsg::Exhausted { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use soc_can::CanOverlay;
    use soc_overlay::testkit::TestHost;
    use soc_overlay::Effect;

    const N: usize = 16;

    /// ISSUE 5 satellite: `forward_avoiding`'s greedy-over-live fallback
    /// was previously exercised only indirectly through churn runs; these
    /// tests drive the private method straight.
    fn world(seed: u64) -> (PidCan, CanOverlay, TestHost, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let can = CanOverlay::bootstrap(2, N, N, &mut rng);
        let cmax = ResVec::from_slice(&[10.0, 10.0]);
        let host = TestHost::uniform(N, ResVec::from_slice(&[5.0, 5.0]), cmax);
        // Tables stay empty (no refresh), so the router's finger step
        // degenerates to the plain greedy hop — deterministic without RNG.
        let proto = PidCan::new(PidCanConfig::hid(), 2, N, N);
        (proto, can, host, rng)
    }

    fn dummy_msg() -> PidMsg {
        PidMsg::StateUpdate {
            subject: NodeId(0),
            avail: ResVec::from_slice(&[5.0, 5.0]),
            target: ResVec::from_slice(&[0.9, 0.9]),
            hops_left: 4,
        }
    }

    /// The greedy choice over `node`'s neighbors restricted by `ok`,
    /// replicating the pre-facade inline loop (distance, then id).
    fn manual_greedy(
        can: &CanOverlay,
        host: &TestHost,
        node: NodeId,
        target: &ResVec,
        avoid: NodeId,
    ) -> Option<NodeId> {
        let mut best: Option<(f64, NodeId)> = None;
        for e in can.neighbors(node) {
            if e.node == avoid || !host.alive[e.node.idx()] {
                continue;
            }
            let d = can.zone(e.node).unwrap().dist_to_point(target);
            if best.is_none_or(|(bd, bn)| d < bd || (d == bd && e.node < bn)) {
                best = Some((d, e.node));
            }
        }
        best.map(|(_, n)| n)
    }

    /// A sender far from the target, its unfiltered greedy next hop, and
    /// the target point.
    fn pick_route(can: &CanOverlay) -> (NodeId, NodeId, ResVec) {
        let target = ResVec::from_slice(&[0.97, 0.97]);
        let sender = can.owner_of(&ResVec::from_slice(&[0.02, 0.02]));
        let hop = soc_can::greedy_next_hop(can, sender, &target).expect("sender is far away");
        (sender, hop, target)
    }

    #[test]
    fn avoided_hop_is_never_chosen() {
        let (mut proto, can, host, mut rng) = world(71);
        let (sender, hop, target) = pick_route(&can);
        let mut ctx = Ctx::new(0, &can, &host, &mut rng);
        let consumed = proto.forward_avoiding(
            &mut ctx,
            sender,
            &target,
            MsgKind::StateUpdate,
            dummy_msg(),
            hop,
        );
        assert!(!consumed, "other live neighbors exist");
        let (fx, _) = ctx.finish();
        let expect = manual_greedy(&can, &host, sender, &target, hop).unwrap();
        assert_ne!(expect, hop);
        match &fx[..] {
            [Effect::Send { from, to, .. }] => {
                assert_eq!(*from, sender);
                assert_eq!(
                    *to, expect,
                    "fallback must pick the nearest non-avoided live neighbor"
                );
            }
            other => panic!("expected exactly one send, got {other:?}"),
        }
    }

    #[test]
    fn dead_neighbors_are_skipped() {
        let (mut proto, can, mut host, mut rng) = world(72);
        let (sender, hop, target) = pick_route(&can);
        // Kill everything the plain greedy would prefer except one
        // survivor; the fallback must find that survivor.
        let survivor = can.neighbors(sender).iter().map(|e| e.node).max().unwrap();
        for e in can.neighbors(sender) {
            host.alive[e.node.idx()] = e.node == survivor;
        }
        let avoid = if hop == survivor {
            NodeId(u32::MAX)
        } else {
            hop
        };
        let mut ctx = Ctx::new(0, &can, &host, &mut rng);
        let consumed = proto.forward_avoiding(
            &mut ctx,
            sender,
            &target,
            MsgKind::StateUpdate,
            dummy_msg(),
            avoid,
        );
        assert!(!consumed);
        let (fx, _) = ctx.finish();
        match &fx[..] {
            [Effect::Send { to, .. }] => assert_eq!(*to, survivor),
            other => panic!("expected exactly one send, got {other:?}"),
        }
    }

    #[test]
    fn isolated_sender_self_consumes() {
        let (mut proto, can, mut host, mut rng) = world(73);
        let (sender, hop, target) = pick_route(&can);
        for e in can.neighbors(sender) {
            host.alive[e.node.idx()] = false;
        }
        let mut ctx = Ctx::new(0, &can, &host, &mut rng);
        let consumed = proto.forward_avoiding(
            &mut ctx,
            sender,
            &target,
            MsgKind::StateUpdate,
            dummy_msg(),
            hop,
        );
        assert!(consumed, "an isolated sender must consume the message");
        let (fx, sent) = ctx.finish();
        assert!(fx.is_empty(), "nothing to send: {fx:?}");
        assert!(sent.is_zero());
    }

    #[test]
    fn suspected_next_hop_is_detoured_by_its_observer_only() {
        // Blacklist the sender's natural next hop: `forward_toward` must
        // detour to the nearest live unsuspected neighbor. The suspicion
        // is per-observer, so routing *from the suspect itself* (or any
        // other node) is unaffected.
        let (mut proto, can, mut host, mut rng) = world(75);
        let (sender, hop, target) = pick_route(&can);
        host.suspects.push((sender, hop));
        let mut ctx = Ctx::new(0, &can, &host, &mut rng);
        let consumed =
            proto.forward_toward(&mut ctx, sender, &target, MsgKind::StateUpdate, dummy_msg());
        assert!(!consumed, "other unsuspected neighbors exist");
        let (fx, _) = ctx.finish();
        let expect = manual_greedy(&can, &host, sender, &target, hop).unwrap();
        match &fx[..] {
            [Effect::Send { from, to, .. }] => {
                assert_eq!(*from, sender);
                assert_ne!(*to, hop, "must not route through the blacklisted hop");
                assert_eq!(*to, expect, "detour is the greedy choice minus the suspect");
            }
            other => panic!("expected exactly one send, got {other:?}"),
        }
        // Another observer with an empty blacklist keeps the plain route.
        host.suspects.clear();
        let mut ctx = Ctx::new(0, &can, &host, &mut rng);
        let consumed =
            proto.forward_toward(&mut ctx, sender, &target, MsgKind::StateUpdate, dummy_msg());
        assert!(!consumed);
        let (fx, _) = ctx.finish();
        match &fx[..] {
            [Effect::Send { to, .. }] => assert_eq!(*to, hop, "no suspicion, no detour"),
            other => panic!("expected exactly one send, got {other:?}"),
        }
    }

    #[test]
    fn fully_suspected_neighborhood_consumes_instead_of_looping() {
        let (mut proto, can, mut host, mut rng) = world(76);
        let (sender, _, target) = pick_route(&can);
        for e in can.neighbors(sender) {
            host.suspects.push((sender, e.node));
        }
        let mut ctx = Ctx::new(0, &can, &host, &mut rng);
        let consumed =
            proto.forward_toward(&mut ctx, sender, &target, MsgKind::StateUpdate, dummy_msg());
        assert!(
            consumed,
            "a sender that suspects every neighbor must consume, not loop"
        );
        let (fx, _) = ctx.finish();
        assert!(fx.is_empty());
    }

    #[test]
    fn forward_avoiding_also_respects_suspicion() {
        let (mut proto, can, mut host, mut rng) = world(77);
        let (sender, hop, target) = pick_route(&can);
        // `avoid` one node, blacklist the natural fallback: the chosen hop
        // must dodge both.
        let fallback = manual_greedy(&can, &host, sender, &target, hop).unwrap();
        host.suspects.push((sender, fallback));
        let mut ctx = Ctx::new(0, &can, &host, &mut rng);
        let consumed = proto.forward_avoiding(
            &mut ctx,
            sender,
            &target,
            MsgKind::StateUpdate,
            dummy_msg(),
            hop,
        );
        let (fx, _) = ctx.finish();
        if consumed {
            assert!(fx.is_empty());
        } else {
            match &fx[..] {
                [Effect::Send { to, .. }] => {
                    assert_ne!(*to, hop, "avoided hop chosen");
                    assert_ne!(*to, fallback, "suspected fallback chosen");
                }
                other => panic!("expected exactly one send, got {other:?}"),
            }
        }
    }

    #[test]
    fn owner_consumes_without_forwarding() {
        let (mut proto, can, host, mut rng) = world(74);
        let target = ResVec::from_slice(&[0.97, 0.97]);
        let owner = can.owner_of(&target);
        let mut ctx = Ctx::new(0, &can, &host, &mut rng);
        let consumed = proto.forward_avoiding(
            &mut ctx,
            owner,
            &target,
            MsgKind::StateUpdate,
            dummy_msg(),
            NodeId(u32::MAX),
        );
        assert!(consumed, "the zone owner consumes directly");
        let (fx, _) = ctx.finish();
        assert!(fx.is_empty());
    }
}
