//! PIList — the Positive Index List (§III-B2).
//!
//! "Upon receiving an index message, the node will store it into a list,
//! denoted as PIList, which means Positive Index List." Entries name nodes
//! *known to hold state records* (their caches were non-empty when they
//! diffused); they sit in the index-senders' positive direction, which is
//! exactly where records qualifying a local demand vector live.

use rand::{Rng, RngExt};
use soc_types::{NodeId, SimMillis};

/// A TTL'd set of index-node identifiers with receipt timestamps.
#[derive(Clone, Debug, Default)]
pub struct PiList {
    entries: Vec<(NodeId, SimMillis)>,
}

impl PiList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `index_node`'s identifier arrived at `now`. Re-receipt
    /// refreshes the timestamp.
    pub fn insert(&mut self, index_node: NodeId, now: SimMillis) {
        match self.entries.iter_mut().find(|(n, _)| *n == index_node) {
            Some(e) => e.1 = now,
            None => self.entries.push((index_node, now)),
        }
    }

    /// Drop entries older than `ttl` at `now`; returns how many were kept.
    pub fn purge(&mut self, now: SimMillis, ttl: SimMillis) -> usize {
        self.entries.retain(|&(_, t)| now.saturating_sub(t) <= ttl);
        self.entries.len()
    }

    /// Remove a specific node (e.g. observed dead).
    pub fn remove(&mut self, node: NodeId) {
        self.entries.retain(|&(n, _)| n != node);
    }

    /// Number of stored entries (fresh or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fresh entries at `now`.
    pub fn fresh(&self, now: SimMillis, ttl: SimMillis) -> Vec<NodeId> {
        self.entries
            .iter()
            .filter(|&&(_, t)| now.saturating_sub(t) <= ttl)
            .map(|&(n, _)| n)
            .collect()
    }

    /// Sample up to `k` distinct fresh entries uniformly at random
    /// (Algorithm 4 line 1: "Randomly select a few indexes from pi's PIList
    /// and put them in j").
    pub fn sample<R: Rng>(
        &self,
        k: usize,
        now: SimMillis,
        ttl: SimMillis,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let mut fresh = self.fresh(now, ttl);
        // Partial Fisher–Yates: the first `k` positions become the sample.
        let take = k.min(fresh.len());
        for i in 0..take {
            let j = rng.random_range(i..fresh.len());
            fresh.swap(i, j);
        }
        fresh.truncate(take);
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn insert_is_idempotent_and_refreshing() {
        let mut p = PiList::new();
        p.insert(NodeId(1), 100);
        p.insert(NodeId(1), 500);
        assert_eq!(p.len(), 1);
        // The refreshed timestamp keeps it alive longer: with the original
        // t=100 stamp the entry would be stale at now=1000 (age 900 > 600),
        // but the refresh at t=500 keeps it fresh (age 500).
        assert_eq!(p.fresh(1_000, 600), vec![NodeId(1)]);
        assert!(p.fresh(1_101, 600).is_empty());
    }

    #[test]
    fn purge_drops_stale() {
        let mut p = PiList::new();
        p.insert(NodeId(1), 0);
        p.insert(NodeId(2), 900);
        assert_eq!(p.purge(1_000, 500), 1);
        assert_eq!(p.fresh(1_000, 500), vec![NodeId(2)]);
    }

    #[test]
    fn sample_is_within_bounds_and_distinct() {
        let mut p = PiList::new();
        for i in 0..10 {
            p.insert(NodeId(i), 0);
        }
        let mut rng = SmallRng::seed_from_u64(7);
        for k in [0usize, 3, 10, 25] {
            let s = p.sample(k, 100, 1_000, &mut rng);
            assert_eq!(s.len(), k.min(10));
            let mut dedup = s.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), s.len(), "sample has duplicates");
        }
    }

    #[test]
    fn sample_excludes_stale_entries() {
        let mut p = PiList::new();
        p.insert(NodeId(1), 0);
        p.insert(NodeId(2), 10_000);
        let mut rng = SmallRng::seed_from_u64(8);
        let s = p.sample(5, 10_500, 600, &mut rng);
        assert_eq!(s, vec![NodeId(2)]);
    }

    #[test]
    fn remove_specific_node() {
        let mut p = PiList::new();
        p.insert(NodeId(1), 0);
        p.insert(NodeId(2), 0);
        p.remove(NodeId(1));
        assert_eq!(p.fresh(0, 100), vec![NodeId(2)]);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut p = PiList::new();
        for i in 0..4 {
            p.insert(NodeId(i), 0);
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            for id in p.sample(1, 0, 100, &mut rng) {
                counts[id.0 as usize] += 1;
            }
        }
        for c in counts {
            assert!((800..1200).contains(&c), "biased sampling: {counts:?}");
        }
    }
}
