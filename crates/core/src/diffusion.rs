//! Index-diffusion analysis (§III-B, Theorem 1, Fig. 2–3).
//!
//! The live protocol diffuses through `PidMsg::Index` messages
//! ([`crate::protocol`]); this module provides a synchronous simulation of
//! one diffusion round for analysis, plus the binary-decomposition argument
//! behind Theorem 1, so tests and benches can reproduce Fig. 2 (relay depth
//! `≤ ⌈log2 r⌉` per dimension) and Fig. 3 (SID vs HID coverage) without
//! running the full event loop.

use crate::config::DiffusionMethod;
use rand::Rng;
use soc_can::{is_negative_direction, CanOverlay};
use soc_inscan::IndexTables;
use soc_types::NodeId;
use std::collections::VecDeque;

/// Result of one synchronous diffusion round from a single origin.
#[derive(Clone, Debug)]
pub struct DiffusionOutcome {
    /// Distinct nodes that received the origin's index, with the message
    /// depth (hops from the origin) at first receipt.
    pub reached: Vec<(NodeId, usize)>,
    /// Total index messages sent.
    pub messages: usize,
    /// Maximum message depth.
    pub max_depth: usize,
}

impl DiffusionOutcome {
    /// Number of distinct nodes notified.
    pub fn coverage(&self) -> usize {
        self.reached.len()
    }

    /// Fraction of the origin's negative-direction nodes that were notified.
    pub fn negative_direction_coverage(&self, ov: &CanOverlay, origin: NodeId) -> f64 {
        let oz = ov.zone(origin).expect("origin alive");
        let neg: Vec<NodeId> = ov
            .live_nodes()
            .filter(|&n| n != origin)
            .filter(|&n| is_negative_direction(ov.zone(n).unwrap(), oz))
            .collect();
        if neg.is_empty() {
            return 1.0;
        }
        let hit = neg
            .iter()
            .filter(|n| self.reached.iter().any(|(r, _)| r == *n))
            .count();
        hit as f64 / neg.len() as f64
    }
}

/// Run one diffusion round from `origin` using the given method, with the
/// same target-selection rules as the live protocol.
pub fn simulate_diffusion<R: Rng>(
    ov: &CanOverlay,
    tables: &IndexTables,
    origin: NodeId,
    method: DiffusionMethod,
    l: usize,
    rng: &mut R,
) -> DiffusionOutcome {
    let dim = ov.dim();
    let mut reached: Vec<(NodeId, usize)> = Vec::new();
    let mut messages = 0usize;
    let mut max_depth = 0usize;
    let note = |node: NodeId, depth: usize, reached: &mut Vec<(NodeId, usize)>| {
        if !reached.iter().any(|(n, _)| *n == node) {
            reached.push((node, depth));
        }
    };

    match method {
        DiffusionMethod::Hopping => {
            // (at, dim, remaining ttl, depth) — Algorithms 1–2.
            let mut queue: VecDeque<(NodeId, usize, usize, usize)> = VecDeque::new();
            if let Some(t) = tables.get(origin).random_ninode(0, rng) {
                messages += 1;
                queue.push_back((t, 0, l, 1));
            }
            while let Some((at, j, q, depth)) = queue.pop_front() {
                max_depth = max_depth.max(depth);
                note(at, depth, &mut reached);
                if q > 1 {
                    if let Some(t) = tables.get(at).random_ninode(j, rng) {
                        messages += 1;
                        queue.push_back((t, j, q - 1, depth + 1));
                    }
                }
                if j + 1 < dim {
                    if let Some(t) = tables.get(at).random_ninode(j + 1, rng) {
                        messages += 1;
                        queue.push_back((t, j + 1, l, depth + 1));
                    }
                }
            }
        }
        DiffusionMethod::Spreading => {
            // Initiators pick all L same-dimension targets themselves.
            let mut queue: VecDeque<(NodeId, usize, usize)> = VecDeque::new(); // (at, dim, depth)
            for _ in 0..l {
                if let Some(t) = tables.get(origin).random_ninode(0, rng) {
                    messages += 1;
                    queue.push_back((t, 0, 1));
                }
            }
            while let Some((at, j, depth)) = queue.pop_front() {
                max_depth = max_depth.max(depth);
                note(at, depth, &mut reached);
                if j + 1 < dim {
                    for _ in 0..l {
                        if let Some(t) = tables.get(at).random_ninode(j + 1, rng) {
                            messages += 1;
                            queue.push_back((t, j + 1, depth + 1));
                        }
                    }
                }
            }
        }
    }

    DiffusionOutcome {
        reached,
        messages,
        max_depth,
    }
}

/// Theorem 1's constructive core: the powers of two composing a hop
/// distance `λ` (its binary decomposition), so `λ` can be covered in
/// `popcount(λ) ≤ ⌈log2(λ+1)⌉` index-node relays.
pub fn binary_decomposition(lambda: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut bit = 0usize;
    let mut x = lambda;
    while x > 0 {
        if x & 1 == 1 {
            out.push(1 << bit);
        }
        x >>= 1;
        bit += 1;
    }
    out.reverse(); // largest jump first
    out
}

/// Relay hops needed to cover distance `lambda` per Theorem 1.
pub fn theorem1_hops(lambda: usize) -> usize {
    lambda.count_ones() as usize
}

/// Fig. 2's line-network experiment: `r` nodes on a line, each holding
/// `2^k` fingers toward the origin; diffuse the top node's index along the
/// binary decomposition and return, for every node, the relay depth at
/// which it is first notified (index 0 = the top node itself).
pub fn line_diffusion_depths(r: usize) -> Vec<usize> {
    // Node i sits at distance i from the top node. Depth(i) = relays to
    // reach it using power-of-two jumps: popcount(i) when relays may chain
    // through intermediate notified nodes greedily.
    (0..r).map(theorem1_hops).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiffusionMethod;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup(n: usize, dim: usize, seed: u64) -> (CanOverlay, IndexTables, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ov = CanOverlay::bootstrap(dim, n, n, &mut rng);
        let mut tables = IndexTables::new(dim, n, n);
        tables.refresh_all(&ov, &mut rng);
        (ov, tables, rng)
    }

    #[test]
    fn binary_decomposition_reconstructs() {
        for lambda in 0..256usize {
            let parts = binary_decomposition(lambda);
            assert_eq!(parts.iter().sum::<usize>(), lambda);
            assert_eq!(parts.len(), theorem1_hops(lambda));
            // Each part is a power of two.
            for p in parts {
                assert_eq!(p & (p - 1), 0);
            }
        }
    }

    #[test]
    fn theorem1_bound_holds() {
        // h ≤ [log2 λ] + 1 ≤ [log2 r] for any distance λ < r.
        for r in [19usize, 64, 1000] {
            for lambda in 1..r {
                let h = theorem1_hops(lambda);
                let bound = (lambda as f64).log2().floor() as usize + 1;
                assert!(h <= bound, "λ={lambda}: {h} > {bound}");
            }
        }
    }

    #[test]
    fn fig2_line_example() {
        // The paper's example: r = 19 nodes, the top-most node needs < 4
        // relay hops (log2 19 ≈ 4.25) to reach everyone.
        let depths = line_diffusion_depths(19);
        assert_eq!(depths[0], 0);
        assert!(depths.iter().all(|&d| d <= 4));
        // Specifically (13)₁₀ = (1101)₂ → 3 hops, as §III-B1 works out.
        assert_eq!(depths[13], 3);
    }

    #[test]
    fn hopping_message_count_bounded_by_omega() {
        let (ov, tables, mut rng) = setup(128, 2, 81);
        let cfg = crate::config::PidCanConfig::default();
        let omega = cfg.omega(2);
        // Origin must have negative directions: use the top-corner owner.
        let origin = ov.owner_of(&soc_types::ResVec::from_slice(&[1.0, 1.0]));
        for _ in 0..50 {
            let out =
                simulate_diffusion(&ov, &tables, origin, DiffusionMethod::Hopping, 2, &mut rng);
            assert!(out.messages <= omega, "{} > ω = {omega}", out.messages);
        }
    }

    #[test]
    fn hopping_spreads_wider_than_spreading() {
        // Fig. 3 / §III-B2: HID diffuses more widely than SID at equal L.
        let (ov, tables, mut rng) = setup(256, 2, 82);
        let origin = ov.owner_of(&soc_types::ResVec::from_slice(&[1.0, 1.0]));
        let rounds = 200;
        let mut hid_cov = 0usize;
        let mut sid_cov = 0usize;
        let mut hid_msgs = 0usize;
        let mut sid_msgs = 0usize;
        // Aggregate distinct nodes over repeated rounds (the protocol
        // diffuses every cycle, so cumulative coverage is what matters).
        let mut hid_seen = std::collections::HashSet::new();
        let mut sid_seen = std::collections::HashSet::new();
        for _ in 0..rounds {
            let h = simulate_diffusion(&ov, &tables, origin, DiffusionMethod::Hopping, 2, &mut rng);
            let s = simulate_diffusion(
                &ov,
                &tables,
                origin,
                DiffusionMethod::Spreading,
                2,
                &mut rng,
            );
            hid_cov += h.coverage();
            sid_cov += s.coverage();
            hid_msgs += h.messages;
            sid_msgs += s.messages;
            hid_seen.extend(h.reached.iter().map(|(n, _)| *n));
            sid_seen.extend(s.reached.iter().map(|(n, _)| *n));
        }
        // Message budgets are comparable (same ω cap).
        let rel = (hid_msgs as f64 - sid_msgs as f64).abs() / sid_msgs.max(1) as f64;
        assert!(rel < 0.5, "budget mismatch: {hid_msgs} vs {sid_msgs}");
        let _ = (hid_cov, sid_cov);
        assert!(
            hid_seen.len() >= sid_seen.len(),
            "HID cumulative coverage {} < SID {}",
            hid_seen.len(),
            sid_seen.len()
        );
    }

    #[test]
    fn depth_is_logarithmic_for_hopping() {
        let (ov, tables, mut rng) = setup(256, 2, 83);
        let origin = ov.owner_of(&soc_types::ResVec::from_slice(&[1.0, 1.0]));
        let out = simulate_diffusion(&ov, &tables, origin, DiffusionMethod::Hopping, 2, &mut rng);
        // depth ≤ d · L (each dimension contributes at most L chained
        // relays under the live algorithm).
        assert!(out.max_depth <= 2 * 2, "depth {}", out.max_depth);
    }
}
