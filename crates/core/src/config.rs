//! PID-CAN configuration knobs (§III + §IV-A experimental constants).

use soc_types::{SimMillis, SOC_DIMS};

/// Which index-diffusion strategy a PID-CAN instance runs (Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffusionMethod {
    /// SID: per-dimension initiators select all `L` same-dimension targets
    /// from their own index table and send in parallel (fewer relay hops,
    /// narrower coverage).
    Spreading,
    /// HID: Algorithms 1–2 — hop from index node to index node, re-sampling
    /// at every hop (Theorem 1: `O(log2 n)` relay delay, wider coverage).
    Hopping,
}

/// Tunable parameters of the PID-CAN protocol.
#[derive(Clone, Copy, Debug)]
pub struct PidCanConfig {
    /// Diffusion strategy (SID vs HID).
    pub diffusion: DiffusionMethod,
    /// Slack-on-Submission: query with a slacked vector first (Formula (3)).
    pub sos: bool,
    /// Add a virtual CAN dimension with random coordinates (the `+VD`
    /// competition-dispersal variant).
    pub virtual_dim: bool,
    /// `L`: negative-index notification targets per dimension. The paper
    /// fixes `L = 2` ("L has to be small constant (we always set it to 2)").
    pub fanout_l: usize,
    /// State-update cycle (§IV-A: 400 s).
    pub state_update_ms: SimMillis,
    /// Index-diffusion cycle (Algorithm 1's "tiny cycle").
    pub diffusion_ms: SimMillis,
    /// Index-table (INSCAN finger) refresh cycle.
    pub table_refresh_ms: SimMillis,
    /// State-record (cache `γ`) TTL (§IV-A: 600 s).
    pub record_ttl_ms: SimMillis,
    /// PIList entry TTL.
    pub pilist_ttl_ms: SimMillis,
    /// How many PIList entries an agent samples into a jump list
    /// (Algorithm 4's "randomly select a few indexes").
    pub jump_sample: usize,
    /// §III-B1: indexes are "continually propagated from index-node to
    /// index-node … for finding more resource records on demand" — an index
    /// node whose cache has no qualified records extends the jump list with
    /// this many samples from its *own* PIList.
    pub jump_refill: usize,
    /// Hard cap on index-jump hops per query attempt (delay bound).
    pub jump_budget: usize,
    /// Whether the duty node also searches its own cache before handing the
    /// query to index agents. Algorithm 3 does *not* (the duty node goes
    /// straight to random agents); enabling this shortcut makes all
    /// same-zone queries hit identical records, recreating exactly the
    /// contention hotspots the randomized agent/jump path avoids — the
    /// ablation bench quantifies that. Default: off (faithful).
    pub check_duty_cache: bool,
    /// Candidate-set diversification: nudge each duty query's target point
    /// up by `U[0, corner_jitter]` per normalized dimension, so concurrent
    /// same-corner queries land on adjacent duty zones instead of racing
    /// for one zone's records. 0 (default) = faithful paper behavior; the
    /// λ=0.5 contention diagnostic (`repro diag`) A/Bs this knob.
    pub corner_jitter: f64,
}

impl Default for PidCanConfig {
    fn default() -> Self {
        PidCanConfig {
            diffusion: DiffusionMethod::Hopping,
            sos: false,
            virtual_dim: false,
            fanout_l: 2,
            state_update_ms: 400_000,
            diffusion_ms: 60_000,
            table_refresh_ms: 600_000,
            record_ttl_ms: 600_000,
            pilist_ttl_ms: 900_000,
            jump_sample: 8,
            jump_refill: 3,
            jump_budget: 40,
            check_duty_cache: false,
            corner_jitter: 0.0,
        }
    }
}

impl PidCanConfig {
    /// HID-CAN (the paper's recommended configuration).
    pub fn hid() -> Self {
        Self::default()
    }

    /// SID-CAN.
    pub fn sid() -> Self {
        PidCanConfig {
            diffusion: DiffusionMethod::Spreading,
            ..Self::default()
        }
    }

    /// HID-CAN + SoS.
    pub fn hid_sos() -> Self {
        PidCanConfig {
            sos: true,
            ..Self::default()
        }
    }

    /// SID-CAN + SoS.
    pub fn sid_sos() -> Self {
        PidCanConfig {
            diffusion: DiffusionMethod::Spreading,
            sos: true,
            ..Self::default()
        }
    }

    /// SID-CAN + VD (virtual dimension).
    pub fn sid_vd() -> Self {
        PidCanConfig {
            diffusion: DiffusionMethod::Spreading,
            virtual_dim: true,
            ..Self::default()
        }
    }

    /// Multiply every protocol period/TTL by `f` (scaled-down scenarios
    /// shrink task durations; shrinking the cycles by the same factor
    /// preserves the staleness-to-lifetime ratios that drive contention).
    pub fn scale_cycles(mut self, f: f64) -> Self {
        let s = |ms: SimMillis| -> SimMillis { ((ms as f64 * f).round() as SimMillis).max(1) };
        self.state_update_ms = s(self.state_update_ms);
        self.diffusion_ms = s(self.diffusion_ms);
        self.table_refresh_ms = s(self.table_refresh_ms);
        self.record_ttl_ms = s(self.record_ttl_ms);
        self.pilist_ttl_ms = s(self.pilist_ttl_ms);
        self
    }

    /// Dimensionality of the CAN key space this configuration needs
    /// (the resource dimensions, plus one when VD is on).
    pub fn overlay_dim(&self) -> usize {
        SOC_DIMS + usize::from(self.virtual_dim)
    }

    /// Total diffusion messages per round when every branch finds targets:
    /// `ω = Σ_{j=1..d} L^j = L(L^d − 1)/(L − 1)` (§III-B1).
    pub fn omega(&self, overlay_dim: usize) -> usize {
        let l = self.fanout_l;
        if l <= 1 {
            return overlay_dim * l;
        }
        (1..=overlay_dim).map(|j| l.pow(j as u32)).sum()
    }

    /// Protocol label used in reports (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match (self.diffusion, self.sos, self.virtual_dim) {
            (DiffusionMethod::Spreading, false, false) => "SID-CAN",
            (DiffusionMethod::Hopping, false, false) => "HID-CAN",
            (DiffusionMethod::Spreading, true, false) => "SID-CAN+SoS",
            (DiffusionMethod::Hopping, true, false) => "HID-CAN+SoS",
            (DiffusionMethod::Spreading, false, true) => "SID-CAN+VD",
            (DiffusionMethod::Hopping, false, true) => "HID-CAN+VD",
            _ => "PID-CAN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_legends() {
        assert_eq!(PidCanConfig::hid().label(), "HID-CAN");
        assert_eq!(PidCanConfig::sid().label(), "SID-CAN");
        assert_eq!(PidCanConfig::hid_sos().label(), "HID-CAN+SoS");
        assert_eq!(PidCanConfig::sid_sos().label(), "SID-CAN+SoS");
        assert_eq!(PidCanConfig::sid_vd().label(), "SID-CAN+VD");
    }

    #[test]
    fn omega_matches_paper_example() {
        // §III-B1: "if L = 2 and d = 3, the total number of messages is
        // only 14".
        let cfg = PidCanConfig::default();
        assert_eq!(cfg.omega(3), 14);
        assert_eq!(cfg.omega(2), 6);
        assert_eq!(cfg.omega(5), 62);
    }

    #[test]
    fn vd_adds_an_overlay_dimension() {
        assert_eq!(PidCanConfig::hid().overlay_dim(), 5);
        assert_eq!(PidCanConfig::sid_vd().overlay_dim(), 6);
    }

    #[test]
    fn paper_experimental_constants() {
        let c = PidCanConfig::default();
        assert_eq!(c.fanout_l, 2);
        assert_eq!(c.state_update_ms, 400_000);
    }
}
