//! PID-CAN — Proactive Index Diffusion CAN (the paper's contribution, §III).
//!
//! The protocol has three moving parts, each in its own module:
//!
//! * [`diffusion`] — Algorithms 1–2: nodes whose state-record cache `γ` is
//!   non-empty periodically diffuse their identifier *backwards* (toward
//!   negative-direction nodes) through randomly chosen negative index nodes
//!   (`NINode`s, at `2^k` hop distances), `L` per dimension. Two variants:
//!   **SID** (spreading — per-dimension initiators pick all `L` targets from
//!   their own table, one-hop parallel sends) and **HID** (hopping — the
//!   index is relayed index-node to index-node, compounding distances;
//!   Theorem 1 bounds the relay delay by `O(log2 n)`).
//! * [`protocol`] — Algorithms 3–5: the contention-minimized query. A
//!   duty-query routes to the duty node enclosing the expectation vector;
//!   the duty node picks `d` random *positive* adjacent neighbors as index
//!   agents (`ι`); agents sample their Positive-Index List (`PIList`) into a
//!   jump list (`j`); index-jump messages hop through it, returning every
//!   qualified cached record (`FoundList ϕ`) to the requester until `δ`
//!   results are found, falling back to the next random agent when a list
//!   drains.
//! * Optional add-ons: **SoS** (Slack-on-Submission, Formula (3)) — query
//!   with a randomly slacked vector `e ⪯ e' ⪯ cmax` first, restore `e` on
//!   failure; **VD** — an extra virtual CAN dimension with random
//!   coordinates to disperse competition (the Kim et al. baseline variant).
//!
//! The crate plugs into the scenario runner through
//! `soc_overlay::DiscoveryOverlay`.

pub mod config;
pub mod diffusion;
pub mod messages;
pub mod pilist;
pub mod protocol;

pub use config::{DiffusionMethod, PidCanConfig};
pub use diffusion::{simulate_diffusion, DiffusionOutcome};
pub use messages::PidMsg;
pub use pilist::PiList;
pub use protocol::PidCan;
