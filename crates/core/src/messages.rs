//! PID-CAN wire messages.
//!
//! Three query-phase messages (§III-C: duty-query, index-agent, index-jump)
//! plus the state-update and index-diffusion messages of §III-A/B and the
//! FoundList notification of Algorithm 5.

use soc_overlay::Candidate;
use soc_types::{NodeId, QueryId, ResVec};

/// Everything PID-CAN puts on the wire.
#[derive(Clone, Debug)]
pub enum PidMsg {
    /// A node's availability record being routed to its duty node.
    StateUpdate {
        /// Node the record describes.
        subject: NodeId,
        /// Its availability vector (raw units).
        avail: ResVec,
        /// CAN key-space target (normalized availability, plus the virtual
        /// coordinate under VD).
        target: ResVec,
        /// Remaining routing-hop budget (drop the record when it hits 0 —
        /// the next cycle re-publishes anyway).
        hops_left: u32,
    },
    /// Index-diffusion message `{ID, dim_NO, dim_TTL}` (Algorithms 1–2).
    Index {
        /// Identifier being diffused (a node whose cache is non-empty).
        id: NodeId,
        /// Dimension currently being propagated (1-based in the paper;
        /// 0-based here).
        dim_no: usize,
        /// Remaining same-dimension relay budget (`q`); 0 under SID.
        dim_ttl: usize,
    },
    /// Query routing toward the duty node (Algorithm 3).
    DutyQuery {
        /// Query identity.
        qid: QueryId,
        /// Requester (receives FoundList notifications).
        requester: NodeId,
        /// Demand vector being matched (raw units; under SoS this is the
        /// slacked `e'`).
        demand: ResVec,
        /// CAN key-space target (normalized demand).
        target: ResVec,
        /// Results still wanted (`δ`).
        delta: usize,
        /// Remaining routing-hop budget (bounds the query delay; exhausting
        /// it fails the query rather than wandering forever).
        hops_left: u32,
    },
    /// Index-agent message `{v, ι − α}` (Algorithm 4).
    IndexAgent {
        /// Query identity.
        qid: QueryId,
        /// Requester.
        requester: NodeId,
        /// Demand vector (raw units).
        demand: ResVec,
        /// Results still wanted.
        delta: usize,
        /// Remaining agents (`ι` minus already-consumed ones).
        agents: Vec<NodeId>,
    },
    /// Index-jump message `{v, δ, j − β}` (Algorithm 5).
    IndexJump {
        /// Query identity.
        qid: QueryId,
        /// Requester.
        requester: NodeId,
        /// Demand vector (raw units).
        demand: ResVec,
        /// Results still wanted.
        delta: usize,
        /// Remaining jump targets (`j`).
        jumps: Vec<NodeId>,
        /// Remaining agents to fall back to.
        agents: Vec<NodeId>,
        /// Remaining jump-hop budget (query delay bound).
        budget: usize,
    },
    /// FoundList `ϕ` notification to the requester.
    Found {
        /// Query identity.
        qid: QueryId,
        /// Qualified records discovered at one index node.
        candidates: Vec<Candidate>,
    },
    /// End-of-search notice to the requester (the searcher exhausted both
    /// its jump list and the agent list), so SoS can decide on a retry.
    Exhausted {
        /// Query identity.
        qid: QueryId,
    },
}

impl PidMsg {
    /// Short label for traces and tests.
    pub fn label(&self) -> &'static str {
        match self {
            PidMsg::StateUpdate { .. } => "state-update",
            PidMsg::Index { .. } => "index",
            PidMsg::DutyQuery { .. } => "duty-query",
            PidMsg::IndexAgent { .. } => "index-agent",
            PidMsg::IndexJump { .. } => "index-jump",
            PidMsg::Found { .. } => "found",
            PidMsg::Exhausted { .. } => "exhausted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let msgs = [
            PidMsg::StateUpdate {
                subject: NodeId(0),
                avail: ResVec::zeros(2),
                target: ResVec::zeros(2),
                hops_left: 8,
            },
            PidMsg::Index {
                id: NodeId(0),
                dim_no: 0,
                dim_ttl: 2,
            },
            PidMsg::DutyQuery {
                qid: QueryId(0),
                requester: NodeId(0),
                demand: ResVec::zeros(2),
                target: ResVec::zeros(2),
                delta: 1,
                hops_left: 8,
            },
            PidMsg::IndexAgent {
                qid: QueryId(0),
                requester: NodeId(0),
                demand: ResVec::zeros(2),
                delta: 1,
                agents: vec![],
            },
            PidMsg::IndexJump {
                qid: QueryId(0),
                requester: NodeId(0),
                demand: ResVec::zeros(2),
                delta: 1,
                jumps: vec![],
                agents: vec![],
                budget: 8,
            },
            PidMsg::Found {
                qid: QueryId(0),
                candidates: vec![],
            },
            PidMsg::Exhausted { qid: QueryId(0) },
        ];
        let mut labels: Vec<&str> = msgs.iter().map(|m| m.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), msgs.len());
    }
}
