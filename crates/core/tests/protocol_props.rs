//! Property tests on PID-CAN's pure components: the SoS slack relation
//! (Formula (3)), ω message-count algebra, diffusion target orientation and
//! jump-list handling.

use pidcan::diffusion::{binary_decomposition, theorem1_hops};
use pidcan::{DiffusionMethod, PiList, PidCanConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use soc_types::{NodeId, ResVec};

proptest! {
    #[test]
    fn omega_closed_form(l in 2usize..4, d in 1usize..6) {
        // ω = L(L^d − 1)/(L − 1) (§III-B1).
        let cfg = PidCanConfig { fanout_l: l, ..PidCanConfig::default() };
        let omega = cfg.omega(d);
        let closed = l * (l.pow(d as u32) - 1) / (l - 1);
        prop_assert_eq!(omega, closed);
    }

    #[test]
    fn theorem1_hops_subadditive(a in 1usize..2048, b in 1usize..2048) {
        // Covering a+b hops never needs more relays than covering each part.
        prop_assert!(theorem1_hops(a + b) <= theorem1_hops(a) + theorem1_hops(b));
    }

    #[test]
    fn binary_decomposition_is_strictly_decreasing(lambda in 1usize..65536) {
        let parts = binary_decomposition(lambda);
        for w in parts.windows(2) {
            prop_assert!(w[0] > w[1], "not strictly decreasing: {parts:?}");
        }
    }

    #[test]
    fn pilist_sample_is_subset_of_fresh(
        ids in prop::collection::vec(0u32..64, 0..32),
        k in 0usize..16,
        seed in 0u64..1000,
    ) {
        let mut p = PiList::new();
        for (t, id) in ids.iter().enumerate() {
            p.insert(NodeId(*id), t as u64 * 10);
        }
        let now = 10_000;
        let ttl = 600;
        let fresh = p.fresh(now, ttl);
        let mut rng = SmallRng::seed_from_u64(seed);
        let sample = p.sample(k, now, ttl, &mut rng);
        prop_assert!(sample.len() <= k);
        for s in &sample {
            prop_assert!(fresh.contains(s));
        }
        // No duplicates.
        let mut d = sample.clone();
        d.sort();
        d.dedup();
        prop_assert_eq!(d.len(), sample.len());
    }

    #[test]
    fn slack_relation_holds(
        demand in prop::collection::vec(0.1f64..10.0, 5),
        seed in 0u64..1000,
    ) {
        // Formula (3): e ⪯ e' ⪯ cmax. Exercised through the protocol's
        // public behavior: a slacked query's demand dominates the original
        // (checked here via the algebra the protocol uses).
        let e = ResVec::from_slice(&demand);
        let cmax = ResVec::from_slice(&[25.6, 80.0, 10.0, 240.0, 4096.0]).max(&e);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Reproduce the slack construction: e' = e + u·(cmax − e).
        let mut e2 = e;
        for d in 0..e2.dim() {
            use rand::RngExt;
            e2[d] += rng.random::<f64>() * (cmax[d] - e2[d]);
        }
        prop_assert!(e2.dominates(&e));
        prop_assert!(cmax.dominates(&e2));
        // Anything qualifying e' also qualifies e (the SoS soundness
        // property: slacked results remain valid for the original demand).
        let avail = e2; // the tightest qualifying availability
        prop_assert!(avail.dominates(&e));
    }

    #[test]
    fn labels_are_stable(sos in prop::bool::ANY, vd in prop::bool::ANY) {
        let cfg = PidCanConfig {
            diffusion: DiffusionMethod::Hopping,
            sos,
            virtual_dim: vd,
            ..PidCanConfig::default()
        };
        let label = cfg.label();
        prop_assert!(label.starts_with("HID") || label.starts_with("PID"));
        if sos && !vd {
            prop_assert!(label.ends_with("SoS"));
        }
    }

    #[test]
    fn cycle_scaling_is_monotone(f in 0.01f64..1.0) {
        let base = PidCanConfig::default();
        let scaled = base.scale_cycles(f);
        prop_assert!(scaled.state_update_ms <= base.state_update_ms);
        prop_assert!(scaled.diffusion_ms <= base.diffusion_ms);
        prop_assert!(scaled.record_ttl_ms <= base.record_ttl_ms);
        prop_assert!(scaled.pilist_ttl_ms <= base.pilist_ttl_ms);
        // Ratios are preserved (within rounding).
        let r0 = base.record_ttl_ms as f64 / base.state_update_ms as f64;
        let r1 = scaled.record_ttl_ms as f64 / scaled.state_update_ms as f64;
        prop_assert!((r0 - r1).abs() < 0.05 * r0);
    }
}
