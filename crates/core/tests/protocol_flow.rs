//! End-to-end PID-CAN protocol flow tests on the synchronous test harness:
//! state publication → index diffusion → duty-query → agents → jumps →
//! FoundList, plus SoS retry and churn-drop recovery.

use pidcan::{PidCan, PidCanConfig, PidMsg};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use soc_can::CanOverlay;
use soc_net::MsgKind;
use soc_overlay::testkit::{TestHarness, TestHost};
use soc_overlay::{DiscoveryOverlay, QueryRequest, QueryVerdict};
use soc_types::{NodeId, QueryId, ResVec};

const N: usize = 64;

/// Two-dimensional world: cmax = (10, 10); node i advertises availability
/// that grows with its id so records spread over the key space.
fn world(cfg: PidCanConfig, seed: u64) -> TestHarness<PidCan> {
    let dim = 2 + usize::from(cfg.virtual_dim);
    let mut rng = SmallRng::seed_from_u64(seed);
    let can = CanOverlay::bootstrap(dim, N, N, &mut rng);
    let cmax = ResVec::from_slice(&[10.0, 10.0]);
    let mut host = TestHost::uniform(N, ResVec::from_slice(&[5.0, 5.0]), cmax);
    for i in 0..N {
        let f = 0.15 + 0.8 * (i as f64 / N as f64);
        host.avails[i] = ResVec::from_slice(&[10.0 * f, 10.0 * f]);
    }
    let proto = PidCan::new(cfg, dim, N, N);
    TestHarness::new(proto, can, host, seed)
}

/// Let periodic timers run: state updates (400 s cycle) then diffusion.
fn warm_up(h: &mut TestHarness<PidCan>) {
    // One full state-update cycle plus a couple of diffusion cycles.
    h.run_until(520_000);
}

#[test]
fn state_updates_reach_their_duty_nodes() {
    let mut h = world(PidCanConfig::hid(), 1);
    warm_up(&mut h);
    assert!(h.stats.count(MsgKind::StateUpdate) > 0);
    // Every node's record must sit in the cache of the zone owner of its
    // normalized availability.
    let mut stored = 0;
    for i in 0..N {
        let avail = h.host.avails[i];
        let p = avail.normalize(&h.host.cmax);
        let duty = h.can.owner_of(&p);
        let recs = h.proto.cache(duty).fresh(h.now());
        if recs.iter().any(|r| r.subject == NodeId(i as u32)) {
            stored += 1;
        }
    }
    assert!(
        stored >= N * 9 / 10,
        "only {stored}/{N} records reached their duty node"
    );
}

#[test]
fn diffusion_populates_pilists() {
    let mut h = world(PidCanConfig::hid(), 2);
    warm_up(&mut h);
    assert!(h.stats.count(MsgKind::IndexDiffusion) > 0);
    let with_pil = (0..N)
        .filter(|&i| !h.proto.pilist(NodeId(i as u32)).is_empty())
        .count();
    assert!(
        with_pil > N / 4,
        "only {with_pil}/{N} nodes learned any index"
    );
}

#[test]
fn query_finds_qualified_best_fit_records() {
    for cfg in [PidCanConfig::hid(), PidCanConfig::sid()] {
        let mut h = world(cfg, 3);
        warm_up(&mut h);
        // Demand half of cmax: nodes with f ≥ 0.5 qualify (roughly half).
        let demand = ResVec::from_slice(&[5.0, 5.0]);
        let qid = QueryId(1);
        h.start_query(QueryRequest {
            qid,
            requester: NodeId(0),
            demand,
            wanted: 3,
        });
        let deadline = h.now() + 120_000;
        h.run_until(deadline);
        let results = h.results.get(&qid).cloned().unwrap_or_default();
        assert!(
            !results.is_empty(),
            "{}: no candidates found",
            h.proto.name()
        );
        for c in &results {
            assert!(
                c.avail.dominates(&demand),
                "{}: unqualified candidate {:?}",
                h.proto.name(),
                c
            );
        }
    }
}

#[test]
fn query_exhausts_cleanly_when_nothing_qualifies() {
    let mut h = world(PidCanConfig::hid(), 4);
    warm_up(&mut h);
    // Demand beyond every node's availability (max is 9.5).
    let demand = ResVec::from_slice(&[9.9, 9.9]);
    let qid = QueryId(2);
    h.start_query(QueryRequest {
        qid,
        requester: NodeId(5),
        demand,
        wanted: 1,
    });
    let deadline = h.now() + 120_000;
    h.run_until(deadline);
    assert!(h.results.get(&qid).is_none_or(|r| r.is_empty()));
    assert_eq!(h.done.get(&qid), Some(&QueryVerdict::Exhausted));
}

#[test]
fn sos_retries_with_original_vector() {
    let mut h = world(PidCanConfig::hid_sos(), 5);
    warm_up(&mut h);
    // Tight demand: slacked query may find nothing, restore must succeed.
    let demand = ResVec::from_slice(&[8.8, 8.8]);
    let qid = QueryId(3);
    h.start_query(QueryRequest {
        qid,
        requester: NodeId(1),
        demand,
        wanted: 1,
    });
    let deadline = h.now() + 240_000;
    h.run_until(deadline);
    let found = h.results.get(&qid).map_or(0, |r| r.len());
    let done = h.done.contains_key(&qid);
    // Either the slacked attempt found results, or the retry ran; in both
    // cases the query must not hang.
    assert!(
        found > 0 || done,
        "SoS query hung: found={found}, done={done}"
    );
    // All returned candidates satisfy the *original* demand.
    for c in h.results.get(&qid).cloned().unwrap_or_default() {
        assert!(c.avail.dominates(&demand));
    }
}

#[test]
fn vd_variant_runs_end_to_end() {
    let mut h = world(PidCanConfig::sid_vd(), 6);
    assert_eq!(h.can.dim(), 3, "VD adds one CAN dimension");
    warm_up(&mut h);
    let demand = ResVec::from_slice(&[4.0, 4.0]);
    let qid = QueryId(4);
    h.start_query(QueryRequest {
        qid,
        requester: NodeId(2),
        demand,
        wanted: 2,
    });
    let deadline = h.now() + 120_000;
    h.run_until(deadline);
    let results = h.results.get(&qid).cloned().unwrap_or_default();
    assert!(!results.is_empty(), "VD variant found nothing");
    for c in &results {
        assert!(c.avail.dominates(&demand));
    }
}

#[test]
fn hid_uses_bounded_diffusion_traffic() {
    // Per §III-B1 the per-round message count is ≤ ω = Σ L^j; over a warmed
    // run total diffusion traffic must stay within rounds × ω × nodes.
    let mut h = world(PidCanConfig::hid(), 7);
    warm_up(&mut h);
    let omega = PidCanConfig::hid().omega(2) as u64; // d=2 ⇒ 6
    let cycles = (520_000 / 60_000) + 1;
    let bound = (N as u64) * cycles * omega;
    let sent = h.stats.count(MsgKind::IndexDiffusion);
    assert!(
        sent <= bound,
        "diffusion traffic {sent} exceeds bound {bound}"
    );
    assert!(sent > 0);
}

#[test]
fn dropped_query_messages_are_recovered() {
    let mut h = world(PidCanConfig::hid(), 8);
    warm_up(&mut h);
    // Kill a third of the nodes *without* telling the protocol, so its
    // PILists and fingers are stale; messages to them are dropped and the
    // on_message_dropped path must keep queries alive.
    for i in (0..N).step_by(3).skip(1) {
        h.host.alive[i] = false;
    }
    let demand = ResVec::from_slice(&[3.0, 3.0]);
    let mut answered = 0;
    for k in 0..8u64 {
        let qid = QueryId(100 + k);
        let requester = NodeId(((k * 7) % N as u64) as u32);
        if !h.host.alive[requester.idx()] {
            continue;
        }
        h.start_query(QueryRequest {
            qid,
            requester,
            demand,
            wanted: 2,
        });
        let deadline = h.now() + 120_000;
        h.run_until(deadline);
        let got = h.results.get(&qid).map_or(0, |r| r.len());
        let done = h.done.contains_key(&qid);
        assert!(got > 0 || done, "query {qid:?} hung after drops");
        if got > 0 {
            answered += 1;
        }
    }
    assert!(answered > 0, "no query succeeded under partial failure");
}

#[test]
fn protocol_is_deterministic_for_fixed_seed() {
    let run = |seed: u64| {
        let mut h = world(PidCanConfig::hid(), seed);
        warm_up(&mut h);
        let qid = QueryId(9);
        h.start_query(QueryRequest {
            qid,
            requester: NodeId(0),
            demand: ResVec::from_slice(&[5.0, 5.0]),
            wanted: 3,
        });
        let deadline = h.now() + 120_000;
        h.run_until(deadline);
        (
            h.stats.total(),
            h.results
                .get(&qid)
                .map(|r| r.iter().map(|c| c.node).collect::<Vec<_>>()),
        )
    };
    assert_eq!(run(42), run(42));
    // Exercise the label path too.
    let h = world(PidCanConfig::hid(), 1);
    assert_eq!(h.proto.name(), "HID-CAN");
}

#[test]
fn index_messages_carry_decreasing_ttl() {
    // Algorithm 2: the same-dimension relay decrements dim_TTL; construct a
    // message by hand and check the relay output shape via the harness.
    let mut h = world(PidCanConfig::hid(), 10);
    warm_up(&mut h);
    // Find a node with a populated PIList; its entries' ids must be nodes
    // with non-empty caches (they diffused for a reason).
    let mut checked = 0;
    for i in 0..N {
        let node = NodeId(i as u32);
        for id in h.proto.pilist(node).fresh(h.now(), 900_000) {
            // The diffused identifier names a cache-holder (it held records
            // when it diffused; records may have expired since, so check
            // the cache has ever been non-empty via current content OR just
            // structural sanity: the id is a valid live node).
            assert!(id.idx() < N);
            checked += 1;
        }
    }
    assert!(checked > 0);
    let _ = PidMsg::Index {
        id: NodeId(0),
        dim_no: 0,
        dim_ttl: 2,
    };
}
