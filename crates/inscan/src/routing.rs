//! INSCAN routing: finger jumps + greedy fallback.

use crate::table::IndexTables;
use soc_can::{greedy_next_hop, CanOverlay, Point, RouteOutcome};
use soc_types::{NodeId, MAX_DIM};

/// One INSCAN routing step from `current` toward `target`.
///
/// Strategy: try the longest `2^k` finger (largest `k` first, both
/// directions as needed per dimension) that strictly reduces the distance
/// to the target without overshooting along its dimension; otherwise fall
/// back to a greedy adjacent hop. Returns `None` when `current`'s zone
/// contains the target.
///
/// This step runs once per routed hop of every message in the simulation —
/// the dimension ranking works in a fixed-size stack array (`dim ≤`
/// [`MAX_DIM`]) with a stable insertion sort, so the step allocates
/// nothing. The sort is descending by remaining gap with ties keeping
/// dimension order, exactly the comparison order of the `Vec::sort_by`
/// it replaced (both are stable), so routing decisions are bit-identical.
pub fn inscan_next_hop(
    ov: &CanOverlay,
    tables: &IndexTables,
    current: NodeId,
    target: &Point,
) -> Option<NodeId> {
    let zone = ov.zone(current).expect("routing from dead node");
    if zone.contains(target) {
        return None;
    }
    let cur_dist = zone.dist_to_point(target);
    let table = tables.get(current);

    // Rank dimensions by how far we still have to travel along them.
    let c = zone.center();
    let ndims = ov.dim();
    let mut dims = [(0.0f64, 0usize, false); MAX_DIM];
    for (d, slot) in dims.iter_mut().enumerate().take(ndims) {
        let gap = target[d] - c[d];
        *slot = (gap.abs(), d, gap > 0.0);
    }
    // Stable insertion sort, descending by gap (shift only while strictly
    // smaller, so equal gaps keep ascending-dimension order).
    for i in 1..ndims {
        let x = dims[i];
        let mut j = i;
        while j > 0 && dims[j - 1].0 < x.0 {
            dims[j] = dims[j - 1];
            j -= 1;
        }
        dims[j] = x;
    }

    for &(gap, d, positive) in dims.iter().take(ndims) {
        if gap == 0.0 {
            continue;
        }
        // Longest finger first.
        for k in (0..=table.kmax()).rev() {
            let Some(cand) = table.get(d, positive, k) else {
                continue;
            };
            let Some(cz) = ov.zone(cand) else {
                continue; // stale entry (churn); skip
            };
            // No overshoot along d, and strict global progress.
            let overshoot = if positive {
                cz.lo()[d] > target[d]
            } else {
                cz.hi()[d] < target[d]
            };
            if overshoot {
                continue;
            }
            if cz.dist_to_point(target) < cur_dist {
                return Some(cand);
            }
        }
    }
    // Fingers unusable (edge effects / churn staleness): greedy step.
    greedy_next_hop(ov, current, target)
}

/// Walk a full INSCAN route; see [`soc_can::route_path`] for the greedy
/// analogue.
pub fn inscan_route(
    ov: &CanOverlay,
    tables: &IndexTables,
    from: NodeId,
    target: &Point,
    max_hops: usize,
) -> RouteOutcome {
    let mut path = Vec::new();
    let mut cur = from;
    for _ in 0..max_hops {
        match inscan_next_hop(ov, tables, cur, target) {
            None => {
                return RouteOutcome {
                    owner: Some(cur),
                    path,
                }
            }
            Some(next) => {
                path.push(next);
                cur = next;
            }
        }
    }
    if ov.zone(cur).is_some_and(|z| z.contains(target)) {
        RouteOutcome {
            owner: Some(cur),
            path,
        }
    } else {
        RouteOutcome { owner: None, path }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use soc_can::overlay::random_point;
    use soc_can::route_path;

    fn setup(n: usize, dim: usize, seed: u64) -> (CanOverlay, IndexTables, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ov = CanOverlay::bootstrap(dim, n, n, &mut rng);
        let mut tables = IndexTables::new(dim, n, n);
        tables.refresh_all(&ov, &mut rng);
        (ov, tables, rng)
    }

    #[test]
    fn inscan_routing_reaches_owner() {
        let (ov, tables, mut rng) = setup(128, 2, 61);
        for _ in 0..100 {
            let p = random_point(2, &mut rng);
            let out = inscan_route(&ov, &tables, NodeId(0), &p, 1_000);
            assert_eq!(out.owner, Some(ov.owner_of(&p)));
        }
    }

    #[test]
    fn inscan_beats_greedy_on_average() {
        let (ov, tables, mut rng) = setup(512, 2, 62);
        let mut greedy_hops = 0usize;
        let mut inscan_hops = 0usize;
        for _ in 0..200 {
            let p = random_point(2, &mut rng);
            greedy_hops += route_path(&ov, NodeId(0), &p, 10_000).hops();
            inscan_hops += inscan_route(&ov, &tables, NodeId(0), &p, 10_000).hops();
        }
        assert!(
            inscan_hops < greedy_hops,
            "fingers should shorten routes: {inscan_hops} vs {greedy_hops}"
        );
    }

    #[test]
    fn inscan_hops_are_logarithmic() {
        // Paper: state-update delivery is O(log2 n) hops.
        let n = 1024;
        let (ov, tables, mut rng) = setup(n, 2, 63);
        let log2n = (n as f64).log2();
        let trials = 200;
        let mut total = 0usize;
        for _ in 0..trials {
            let p = random_point(2, &mut rng);
            let from = NodeId((rng.random::<u64>() % n as u64) as u32);
            total += inscan_route(&ov, &tables, from, &p, 10_000).hops();
        }
        let avg = total as f64 / trials as f64;
        assert!(
            avg <= 2.5 * log2n,
            "avg inscan hops {avg:.1} not O(log2 n) (= {log2n:.1})"
        );
    }

    #[test]
    fn routing_survives_stale_entries() {
        let (mut ov, tables, mut rng) = setup(64, 2, 64);
        // Churn a few nodes WITHOUT refreshing the tables: stale fingers.
        for i in [3u32, 9, 17] {
            ov.leave(NodeId(i));
        }
        for _ in 0..50 {
            let p = random_point(2, &mut rng);
            let from = ov.live_nodes().next().unwrap();
            let out = inscan_route(&ov, &tables, from, &p, 2_000);
            assert_eq!(out.owner, Some(ov.owner_of(&p)));
        }
    }

    #[test]
    fn five_dim_inscan_routing() {
        let (ov, tables, mut rng) = setup(243, 5, 65);
        for _ in 0..60 {
            let p = random_point(5, &mut rng);
            let out = inscan_route(&ov, &tables, NodeId(1), &p, 2_000);
            assert_eq!(out.owner, Some(ov.owner_of(&p)));
        }
    }
}
