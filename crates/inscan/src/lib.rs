//! INSCAN — Index-Node Supported CAN (§III-A).
//!
//! INSCAN augments every CAN node with *index nodes*: sampled nodes at
//! `2^k`-hop distances along each dimension, in both directions, for
//! `k = 0, 1, …, ⌊log2 n^{1/d}⌋`. They play two roles:
//!
//! 1. **Routing fingers.** Greedy CAN routing needs `O(d·n^{1/d})` hops;
//!    jumping by the largest non-overshooting `2^k` finger per dimension
//!    brings this to `O(log2 n)` — the paper's claimed state-update and
//!    duty-query delivery bound.
//! 2. **Diffusion targets.** PID-CAN's index-sender/relay algorithms pick
//!    *negative* index nodes (`NINode`s) at random `2^k` distances as
//!    notification targets (`pidcan` crate).
//!
//! The module also implements **INSCAN-RQ** (the flooding range query of
//! Fig. 1) used as the analytical strawman: delay ≤ `2·log2 n` but traffic
//! `log2 n + N − 1` where `N` is the number of zones overlapping the range.

pub mod router;
pub mod routing;
pub mod rq;
pub mod table;

pub use router::{RouteBackend, RouteCacheStats, Router};
pub use routing::{inscan_next_hop, inscan_route};
pub use rq::{range_query, RangeQueryOutcome};
pub use table::{kmax_for, IndexTable, IndexTables, WalkStats};
