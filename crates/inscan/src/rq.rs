//! INSCAN-RQ: the flooding range query (Fig. 1) used as the paper's
//! strawman.
//!
//! §III-A: *"it is easy to prove that its query delay upperbound is
//! `2·log2 n` but the network traffic per query is `log2 n + N − 1`, where
//! `N` is the total number of all responsible nodes (shadow area in
//! Fig. 1)"*. This module computes the exact responsible set and both cost
//! terms so tests/benches can verify those bounds.

use crate::routing::inscan_route;
use crate::table::IndexTables;
use soc_can::{CanOverlay, Point};
use soc_types::NodeId;
use std::collections::{HashSet, VecDeque};

/// Result of one INSCAN-RQ execution.
#[derive(Clone, Debug)]
pub struct RangeQueryOutcome {
    /// The duty (boundary-corner) node the query was routed to.
    pub duty: NodeId,
    /// Hops taken to reach the duty node.
    pub route_hops: usize,
    /// Every responsible node (zone overlapping `[v, hi]` — the shaded
    /// zones of Fig. 1), including the duty node.
    pub responsible: Vec<NodeId>,
    /// Flood messages spent visiting them (`N − 1`: a spanning tree over
    /// the responsible subgraph).
    pub flood_msgs: usize,
    /// Depth of the flood (BFS layers), bounding the second delay phase.
    pub flood_depth: usize,
}

impl RangeQueryOutcome {
    /// Total messages (routing + flood): the `log2 n + N − 1` of §III-A.
    pub fn total_msgs(&self) -> usize {
        self.route_hops + self.flood_msgs
    }

    /// Delay proxy in hops (routing + flood depth): ≤ `2·log2 n` when the
    /// responsible region is compact.
    pub fn delay_hops(&self) -> usize {
        self.route_hops + self.flood_depth
    }
}

/// Execute a full INSCAN-RQ from `requester` for the box `[v, hi]`.
///
/// Routes to the duty node owning `v`, then floods across all zones
/// overlapping the box (BFS along CAN adjacency restricted to responsible
/// zones — responsible regions are boxes, hence connected).
pub fn range_query(
    ov: &CanOverlay,
    tables: &IndexTables,
    requester: NodeId,
    v: &Point,
    hi: &Point,
) -> RangeQueryOutcome {
    let route = inscan_route(ov, tables, requester, v, 100_000);
    let duty = route.owner.expect("INSCAN routing converges");

    // BFS flood across responsible zones.
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut order: Vec<NodeId> = Vec::new();
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    let mut depth = 0usize;
    seen.insert(duty);
    queue.push_back((duty, 0));
    while let Some((cur, d)) = queue.pop_front() {
        order.push(cur);
        depth = depth.max(d);
        for e in ov.neighbors(cur) {
            if seen.contains(&e.node) {
                continue;
            }
            let z = ov.zone(e.node).expect("live neighbor");
            if z.overlaps_box(v, hi) {
                seen.insert(e.node);
                queue.push_back((e.node, d + 1));
            }
        }
    }

    let flood_msgs = order.len().saturating_sub(1);
    RangeQueryOutcome {
        duty,
        route_hops: route.hops(),
        responsible: order,
        flood_msgs,
        flood_depth: depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::IndexTables;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use soc_can::overlay::random_point;
    use soc_types::ResVec;

    fn setup(n: usize, dim: usize, seed: u64) -> (CanOverlay, IndexTables, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ov = CanOverlay::bootstrap(dim, n, n, &mut rng);
        let mut tables = IndexTables::new(dim, n, n);
        tables.refresh_all(&ov, &mut rng);
        (ov, tables, rng)
    }

    #[test]
    fn finds_every_responsible_zone() {
        let (ov, tables, mut rng) = setup(128, 2, 71);
        for _ in 0..30 {
            let v = random_point(2, &mut rng);
            let hi = ResVec::splat(2, 1.0);
            let out = range_query(&ov, &tables, NodeId(0), &v, &hi);
            // Ground truth by exhaustive scan.
            let expect: HashSet<NodeId> = ov
                .live_nodes()
                .filter(|&n| ov.zone(n).unwrap().overlaps_box(&v, &hi))
                .collect();
            let got: HashSet<NodeId> = out.responsible.iter().copied().collect();
            assert_eq!(got, expect, "flood missed responsible zones");
            assert_eq!(out.flood_msgs, expect.len() - 1);
        }
    }

    #[test]
    fn duty_node_owns_query_corner() {
        let (ov, tables, mut rng) = setup(64, 2, 72);
        let v = random_point(2, &mut rng);
        let out = range_query(&ov, &tables, NodeId(3), &v, &ResVec::splat(2, 1.0));
        assert_eq!(out.duty, ov.owner_of(&v));
    }

    #[test]
    fn traffic_grows_with_range_size() {
        // Fig. 4/§I observation: a query for CPU ≥ half of cmax makes ~half
        // the network responsible; bigger ranges cost more flood messages.
        let (ov, tables, _rng) = setup(256, 2, 73);
        let small = range_query(
            &ov,
            &tables,
            NodeId(0),
            &ResVec::from_slice(&[0.9, 0.9]),
            &ResVec::splat(2, 1.0),
        );
        let big = range_query(
            &ov,
            &tables,
            NodeId(0),
            &ResVec::from_slice(&[0.1, 0.1]),
            &ResVec::splat(2, 1.0),
        );
        assert!(big.flood_msgs > 4 * small.flood_msgs.max(1));
        // The low-corner query touches most of the network.
        assert!(big.responsible.len() as f64 > 0.5 * ov.len() as f64);
    }

    #[test]
    fn delay_bound_matches_paper_shape() {
        // delay ≤ 2 log2 n (routing ≤ log2 n, compact flood ≤ log2 n) for a
        // *small* range; allow slack for constants.
        let n = 256;
        let (ov, tables, mut rng) = setup(n, 2, 74);
        let log2n = (n as f64).log2();
        for _ in 0..20 {
            let mut v = random_point(2, &mut rng);
            // Keep the box small: near the top corner.
            v[0] = v[0].max(0.85);
            v[1] = v[1].max(0.85);
            let out = range_query(&ov, &tables, NodeId(0), &v, &ResVec::splat(2, 1.0));
            assert!(
                (out.delay_hops() as f64) <= 3.0 * log2n,
                "delay {} vs 2·log2 n = {}",
                out.delay_hops(),
                2.0 * log2n
            );
        }
    }
}
