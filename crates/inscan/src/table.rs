//! Per-node index tables: sampled nodes at `2^k` hop distances.

use rand::{Rng, RngExt};
use soc_can::CanOverlay;
use soc_types::NodeId;

/// The paper's `k` bound: `⌊log2 n^{1/d}⌋` (so the largest finger spans
/// roughly half the nodes along one dimension).
pub fn kmax_for(n: usize, dim: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let r = (n as f64).powf(1.0 / dim as f64);
    r.log2().floor().max(0.0) as usize
}

/// One node's index table: for each dimension and direction, the sampled
/// node at `2^k` hops (`entries[dim][k]`), `k = 0..=kmax`.
///
/// Entries may be `None` near the edge of the (non-toroidal) key space.
#[derive(Clone, Debug, Default)]
pub struct IndexTable {
    positive: Vec<Vec<Option<NodeId>>>,
    negative: Vec<Vec<Option<NodeId>>>,
}

/// Message accounting for one refresh sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Probe hops walked (each is one maintenance message).
    pub probe_msgs: u64,
}

impl IndexTable {
    /// Empty table for a `dim`-dimensional overlay with fingers up to
    /// `2^kmax`.
    pub fn new(dim: usize, kmax: usize) -> Self {
        IndexTable {
            positive: vec![vec![None; kmax + 1]; dim],
            negative: vec![vec![None; kmax + 1]; dim],
        }
    }

    /// Largest finger exponent.
    pub fn kmax(&self) -> usize {
        self.positive.first().map(|v| v.len() - 1).unwrap_or(0)
    }

    /// Index node at `2^k` hops along `dim` in the given direction.
    pub fn get(&self, dim: usize, positive: bool, k: usize) -> Option<NodeId> {
        let side = if positive {
            &self.positive
        } else {
            &self.negative
        };
        side.get(dim).and_then(|v| v.get(k).copied().flatten())
    }

    /// All known index nodes along `dim` in the given direction
    /// (deduplicated, ascending `k`).
    pub fn along(&self, dim: usize, positive: bool) -> Vec<NodeId> {
        let side = if positive {
            &self.positive
        } else {
            &self.negative
        };
        let mut out = Vec::new();
        if let Some(v) = side.get(dim) {
            for id in v.iter().flatten() {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
        }
        out
    }

    /// Pick a random negative index node along `dim` (the paper's "randomly
    /// select an NINode along dimension NO. j"): a uniformly random `k`
    /// among the populated entries.
    pub fn random_ninode<R: Rng>(&self, dim: usize, rng: &mut R) -> Option<NodeId> {
        let v = self.negative.get(dim)?;
        let filled: Vec<NodeId> = v.iter().flatten().copied().collect();
        if filled.is_empty() {
            None
        } else {
            Some(filled[rng.random_range(0..filled.len())])
        }
    }

    /// Pick a random positive index node along `dim`.
    pub fn random_positive<R: Rng>(&self, dim: usize, rng: &mut R) -> Option<NodeId> {
        let v = self.positive.get(dim)?;
        let filled: Vec<NodeId> = v.iter().flatten().copied().collect();
        if filled.is_empty() {
            None
        } else {
            Some(filled[rng.random_range(0..filled.len())])
        }
    }

    /// Drop every reference to `node` (it churned away); returns how many
    /// entries were invalidated.
    pub fn evict(&mut self, node: NodeId) -> usize {
        let mut n = 0;
        for side in [&mut self.positive, &mut self.negative] {
            for v in side.iter_mut() {
                for e in v.iter_mut() {
                    if *e == Some(node) {
                        *e = None;
                        n += 1;
                    }
                }
            }
        }
        n
    }

    /// Rebuild the table for `node` by probe walks along every dimension
    /// ("flooding the querying messages to its neighbors along the d
    /// dimensions until reaching the edge of the CAN space", §III-A).
    ///
    /// Each walk step picks a random neighbor with the right orientation,
    /// recording the nodes reached at power-of-two hop counts.
    pub fn refresh<R: Rng>(
        node: NodeId,
        ov: &CanOverlay,
        kmax: usize,
        rng: &mut R,
    ) -> (IndexTable, WalkStats) {
        let dim = ov.dim();
        let mut table = IndexTable::new(dim, kmax);
        let mut stats = WalkStats::default();
        let max_steps = 1usize << kmax;
        for d in 0..dim {
            for positive in [true, false] {
                let mut cur = node;
                let mut next_k = 0usize;
                for step in 1..=max_steps {
                    match walk_step(ov, cur, d, positive, rng) {
                        Some(next) => {
                            stats.probe_msgs += 1;
                            cur = next;
                            if step == (1usize << next_k) {
                                let side = if positive {
                                    &mut table.positive
                                } else {
                                    &mut table.negative
                                };
                                side[d][next_k] = Some(cur);
                                next_k += 1;
                                if next_k > kmax {
                                    break;
                                }
                            }
                        }
                        None => break, // reached the edge of the space
                    }
                }
            }
        }
        (table, stats)
    }
}

/// One walk step: a random adjacent neighbor of `from` along `dim` with the
/// requested orientation, or `None` at the edge of the space.
pub fn walk_step<R: Rng>(
    ov: &CanOverlay,
    from: NodeId,
    dim: usize,
    positive: bool,
    rng: &mut R,
) -> Option<NodeId> {
    let cands: Vec<NodeId> = ov
        .neighbors(from)
        .iter()
        .filter(|e| e.dim == dim && e.positive == positive)
        .map(|e| e.node)
        .collect();
    if cands.is_empty() {
        None
    } else {
        Some(cands[rng.random_range(0..cands.len())])
    }
}

/// All nodes' index tables, plus shared bookkeeping.
#[derive(Clone, Debug)]
pub struct IndexTables {
    tables: Vec<IndexTable>,
    /// Per-node refresh epochs: bumped whenever a node's table content
    /// changes (refresh, clear, eviction). Routing caches compare these to
    /// decide whether a memoized next hop computed from the table is stale.
    epochs: Vec<u64>,
    kmax: usize,
}

impl IndexTables {
    /// Empty tables for `max_nodes` ids in a `dim`-dimensional overlay of
    /// expected size `n`.
    pub fn new(dim: usize, n: usize, max_nodes: usize) -> Self {
        let kmax = kmax_for(n, dim);
        IndexTables {
            tables: vec![IndexTable::new(dim, kmax); max_nodes],
            epochs: vec![0; max_nodes],
            kmax,
        }
    }

    /// Finger exponent bound.
    pub fn kmax(&self) -> usize {
        self.kmax
    }

    /// Table of `node`.
    pub fn get(&self, node: NodeId) -> &IndexTable {
        &self.tables[node.idx()]
    }

    /// Refresh epoch of `node`'s table (changes exactly when the table's
    /// content may have changed).
    #[inline]
    pub fn epoch_of(&self, node: NodeId) -> u64 {
        self.epochs[node.idx()]
    }

    /// Refresh one node's table in place; returns probe accounting.
    pub fn refresh_node<R: Rng>(
        &mut self,
        node: NodeId,
        ov: &CanOverlay,
        rng: &mut R,
    ) -> WalkStats {
        let (t, stats) = IndexTable::refresh(node, ov, self.kmax, rng);
        self.tables[node.idx()] = t;
        self.epochs[node.idx()] += 1;
        stats
    }

    /// Refresh every live node (bootstrap); returns total probe accounting.
    pub fn refresh_all<R: Rng>(&mut self, ov: &CanOverlay, rng: &mut R) -> WalkStats {
        let mut total = WalkStats::default();
        let nodes: Vec<NodeId> = ov.live_nodes().collect();
        for n in nodes {
            let s = self.refresh_node(n, ov, rng);
            total.probe_msgs += s.probe_msgs;
        }
        total
    }

    /// Evict a churned-away node from every table; returns entries dropped.
    pub fn evict_everywhere(&mut self, node: NodeId) -> usize {
        let mut total = 0;
        for (i, t) in self.tables.iter_mut().enumerate() {
            let n = t.evict(node);
            if n > 0 {
                self.epochs[i] += 1;
            }
            total += n;
        }
        total
    }

    /// Clear one node's own table (it departed).
    pub fn clear_node(&mut self, node: NodeId) {
        let dim = self.tables[node.idx()].positive.len();
        self.tables[node.idx()] = IndexTable::new(dim, self.kmax);
        self.epochs[node.idx()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use soc_can::is_negative_direction;

    #[test]
    fn kmax_matches_paper_formula() {
        // n = 2000, d = 5 ⇒ r ≈ 4.57 ⇒ kmax = 2.
        assert_eq!(kmax_for(2000, 5), 2);
        // n = 2000, d = 2 ⇒ r ≈ 44.7 ⇒ kmax = 5.
        assert_eq!(kmax_for(2000, 2), 5);
        assert_eq!(kmax_for(1, 3), 0);
    }

    #[test]
    fn refresh_populates_plausible_entries() {
        let mut rng = SmallRng::seed_from_u64(51);
        let ov = CanOverlay::bootstrap(2, 64, 64, &mut rng);
        let node = NodeId(5);
        let (t, stats) = IndexTable::refresh(node, &ov, kmax_for(64, 2), &mut rng);
        assert!(stats.probe_msgs > 0);
        // At least the k=0 entries (adjacent neighbors) exist in some
        // direction for an interior node.
        let any = (0..2).any(|d| t.get(d, true, 0).is_some() || t.get(d, false, 0).is_some());
        assert!(any, "no index entries at all");
        // Negative entries must be negative-direction nodes of the owner…
        let my_zone = ov.zone(node).unwrap();
        for d in 0..2 {
            for id in t.along(d, false) {
                let z = ov.zone(id).unwrap();
                // …at least along the walked dimension.
                assert!(
                    z.lo()[d] <= my_zone.lo()[d],
                    "negative walk went the wrong way: {z:?} vs {my_zone:?}"
                );
            }
        }
    }

    #[test]
    fn negative_walks_from_top_corner_reach_negative_direction_nodes() {
        let mut rng = SmallRng::seed_from_u64(52);
        let ov = CanOverlay::bootstrap(2, 64, 64, &mut rng);
        // Find the node owning the top corner: every negative index node of
        // it is a negative-direction node.
        let corner = ov.owner_of(&soc_types::ResVec::from_slice(&[1.0, 1.0]));
        let (t, _) = IndexTable::refresh(corner, &ov, kmax_for(64, 2), &mut rng);
        let cz = ov.zone(corner).unwrap();
        for d in 0..2 {
            for id in t.along(d, false) {
                let z = ov.zone(id).unwrap();
                assert!(
                    is_negative_direction(z, cz) || z.ranges_overlap(cz, 1 - d),
                    "walk along {d} from the corner must stay weakly negative"
                );
            }
        }
    }

    #[test]
    fn evict_removes_all_references() {
        let mut rng = SmallRng::seed_from_u64(53);
        let ov = CanOverlay::bootstrap(2, 32, 32, &mut rng);
        let mut tables = IndexTables::new(2, 32, 32);
        tables.refresh_all(&ov, &mut rng);
        let victim = NodeId(7);
        tables.evict_everywhere(victim);
        for n in ov.live_nodes() {
            let t = tables.get(n);
            for d in 0..2 {
                for dir in [true, false] {
                    assert!(!t.along(d, dir).contains(&victim));
                }
            }
        }
    }

    #[test]
    fn random_ninode_draws_from_negative_side() {
        let mut rng = SmallRng::seed_from_u64(54);
        let ov = CanOverlay::bootstrap(2, 64, 64, &mut rng);
        let corner = ov.owner_of(&soc_types::ResVec::from_slice(&[1.0, 1.0]));
        let mut tables = IndexTables::new(2, 64, 64);
        tables.refresh_node(corner, &ov, &mut rng);
        let t = tables.get(corner);
        let negs = t.along(0, false);
        if !negs.is_empty() {
            for _ in 0..20 {
                let pick = t.random_ninode(0, &mut rng).unwrap();
                assert!(negs.contains(&pick));
            }
        }
    }

    #[test]
    fn walk_step_respects_orientation() {
        let mut rng = SmallRng::seed_from_u64(55);
        let ov = CanOverlay::bootstrap(2, 32, 32, &mut rng);
        for node in ov.live_nodes() {
            if let Some(next) = walk_step(&ov, node, 0, true, &mut rng) {
                let me = ov.zone(node).unwrap();
                let nz = ov.zone(next).unwrap();
                assert_eq!(nz.lo()[0], me.hi()[0], "positive step must abut above");
            }
        }
    }
}
