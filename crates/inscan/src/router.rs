//! The routed-message fast path: a [`Router`] facade over the per-hop
//! next-hop decision, with an epoch-validated route cache.
//!
//! Every routed message (state updates, duty queries) re-runs the same
//! pure decision at each hop: *given my zone, my finger table and the
//! target point, who is next?* Targets recur heavily — Table II demand
//! vectors come from a discrete set, so concurrent same-corner queries
//! share exact targets, and an idle node republishes its unchanged
//! availability point every state cycle — which makes the decision worth
//! memoizing, in the spirit of request-aware cloud cache management:
//! remember exactly the hot, re-requested decisions behind explicit
//! invalidation.
//!
//! The cache is a fixed-size direct-mapped table: hashing `(node, target)`
//! picks the **target cell**, and the entry stores the exact target plus
//! the two epochs its answer was computed under — the overlay structure
//! epoch ([`CanOverlay::epoch`], bumped on every join/leave/zone change)
//! and the node's finger-table refresh epoch
//! ([`IndexTables::epoch_of`]). A lookup hits only when the cell holds the
//! *bit-identical* target and both epochs still match, so a hit returns
//! exactly what the scan would have computed — stale entries (churn, table
//! refresh) and cell collisions simply miss and are overwritten. Neither
//! the finger step nor the greedy fallback draws randomness, so cached
//! routing is bitwise-identical end to end
//! (`crates/bench/tests/route_equivalence.rs` pins whole-run fingerprints;
//! `crates/inscan/tests/route_props.rs` pins the step in lockstep).
//!
//! Select with `SOC_ROUTE=scan|cached` (read per router construction,
//! mirroring `SOC_SIM_QUEUE`/`SOC_CACHE`); default `cached`.

use crate::routing::inscan_next_hop;
use crate::table::IndexTables;
use soc_can::{greedy_next_hop, CanOverlay, Point};
use soc_types::NodeId;

/// Which next-hop implementation a [`Router`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteBackend {
    /// Memoize per-(node, target-cell) next hops, epoch-validated
    /// (default).
    Cached,
    /// Recompute the finger/greedy scan on every hop (reference
    /// implementation).
    Scan,
}

impl RouteBackend {
    /// Backend selected by the `SOC_ROUTE` environment variable (`scan` or
    /// `cached`, case-insensitive); defaults to `Cached`.
    ///
    /// This is the single place `SOC_ROUTE` is parsed (the raw read lives
    /// in `soc_types::knobs::raw`, the one `env::var` site for all
    /// `SOC_*` knobs). Still read on every router construction —
    /// deliberately not `OnceLock`-cached, because the equivalence suites
    /// and `repro perf` flip the variable between runs inside one process
    /// to A/B both backends; a process-global cache would freeze the
    /// first value and reduce those bitwise checks to self-comparisons.
    pub fn from_env() -> Self {
        match soc_types::knobs::raw("SOC_ROUTE") {
            Some(v) if v.eq_ignore_ascii_case("scan") => RouteBackend::Scan,
            _ => RouteBackend::Cached,
        }
    }
}

/// Cache slots (power of two). At 300–2000 nodes a duty-routing burst
/// touches a few hundred (node, target) pairs; 4096 cells keep the
/// direct-mapped conflict rate low for ~400 KiB per protocol instance.
const CELLS: usize = 4096;

/// One memoized next-hop decision.
#[derive(Clone, Copy, Debug)]
struct Entry {
    node: NodeId,
    target: Point,
    /// `true` when the entry answers the greedy (finger-less) question —
    /// the same `(node, target)` pair may legitimately have both answers.
    greedy: bool,
    hop: Option<NodeId>,
    ov_epoch: u64,
    tbl_epoch: u64,
}

/// Hit/miss accounting (diagnostics and benches only — never part of a
/// report fingerprint).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that recomputed (cold cell, collision, or stale epoch).
    pub misses: u64,
}

/// The routed-message facade: one per protocol instance.
///
/// Both entry points return bit-identically what their underlying scan
/// (`inscan_next_hop` / `greedy_next_hop`) returns; the `Cached` backend
/// only changes *when the work happens*. `Clone` exists for the sharded
/// executor's per-shard protocol forks; since cache contents never change
/// what a lookup returns, cloned caches stay semantics-transparent.
#[derive(Clone)]
pub struct Router {
    backend: RouteBackend,
    cells: Vec<Option<Entry>>,
    stats: RouteCacheStats,
}

impl Router {
    /// Router with an explicit backend.
    pub fn with_backend(backend: RouteBackend) -> Self {
        Router {
            backend,
            // The scan backend never touches the cells; allocate lazily on
            // first cached lookup would complicate the hot path for no
            // gain — a run constructs O(1) routers.
            cells: vec![None; CELLS],
            stats: RouteCacheStats::default(),
        }
    }

    /// Router with the `SOC_ROUTE`-selected backend.
    pub fn from_env() -> Self {
        Self::with_backend(RouteBackend::from_env())
    }

    /// Backend in use.
    pub fn backend(&self) -> RouteBackend {
        self.backend
    }

    /// Cache accounting so far.
    pub fn cache_stats(&self) -> RouteCacheStats {
        self.stats
    }

    /// One INSCAN routing step (fingers + greedy fallback) from `current`
    /// toward `target`; `None` when `current`'s zone contains the target.
    pub fn next_hop(
        &mut self,
        ov: &CanOverlay,
        tables: &IndexTables,
        current: NodeId,
        target: &Point,
    ) -> Option<NodeId> {
        if self.backend == RouteBackend::Scan {
            return inscan_next_hop(ov, tables, current, target);
        }
        let tbl_epoch = tables.epoch_of(current);
        let cell = cell_of(current, target, false);
        if let Some(hop) = self.lookup(cell, ov, current, target, false, tbl_epoch) {
            return hop;
        }
        let hop = inscan_next_hop(ov, tables, current, target);
        self.store(cell, ov, current, target, false, tbl_epoch, hop);
        hop
    }

    /// One greedy CAN step (no finger table) from `current` toward
    /// `target`; `None` when `current`'s zone contains the target.
    pub fn greedy_hop(
        &mut self,
        ov: &CanOverlay,
        current: NodeId,
        target: &Point,
    ) -> Option<NodeId> {
        if self.backend == RouteBackend::Scan {
            return greedy_next_hop(ov, current, target);
        }
        let cell = cell_of(current, target, true);
        if let Some(hop) = self.lookup(cell, ov, current, target, true, 0) {
            return hop;
        }
        let hop = greedy_next_hop(ov, current, target);
        self.store(cell, ov, current, target, true, 0, hop);
        hop
    }

    /// `Some(answer)` on a validated hit, `None` on a miss. The caller
    /// hashes the key once (`cell_of`) and reuses the cell for the
    /// `store` that follows a miss.
    #[inline]
    fn lookup(
        &mut self,
        cell: usize,
        ov: &CanOverlay,
        node: NodeId,
        target: &Point,
        greedy: bool,
        tbl_epoch: u64,
    ) -> Option<Option<NodeId>> {
        if let Some(e) = &self.cells[cell] {
            if e.node == node
                && e.greedy == greedy
                && e.ov_epoch == ov.epoch()
                && e.tbl_epoch == tbl_epoch
                && e.target == *target
            {
                self.stats.hits += 1;
                return Some(e.hop);
            }
        }
        self.stats.misses += 1;
        None
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn store(
        &mut self,
        cell: usize,
        ov: &CanOverlay,
        node: NodeId,
        target: &Point,
        greedy: bool,
        tbl_epoch: u64,
        hop: Option<NodeId>,
    ) {
        self.cells[cell] = Some(Entry {
            node,
            target: *target,
            greedy,
            hop,
            ov_epoch: ov.epoch(),
            tbl_epoch,
        });
    }
}

/// FNV-1a over the exact target bits, the node id and the greedy flag:
/// the direct-mapped target cell. Each ingredient is folded through the
/// multiply so it reaches the low bits that select the cell (FNV's
/// multiply only diffuses differences *upward* — a flag parked in a high
/// bit of the seed would never touch the cell index).
#[inline]
fn cell_of(node: NodeId, target: &Point, greedy: bool) -> usize {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h = (h ^ node.0 as u64).wrapping_mul(PRIME);
    h = (h ^ greedy as u64).wrapping_mul(PRIME);
    for v in target.iter() {
        h = (h ^ v.to_bits()).wrapping_mul(PRIME);
    }
    // to_bits differences live mostly in the mantissa's high bits; fold
    // the top half down so they reach the cell index too.
    h ^= h >> 32;
    (h as usize) & (CELLS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use soc_can::overlay::random_point;

    fn setup(n: usize, dim: usize, seed: u64) -> (CanOverlay, IndexTables, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ov = CanOverlay::bootstrap(dim, n, n + 8, &mut rng);
        let mut tables = IndexTables::new(dim, n, n + 8);
        tables.refresh_all(&ov, &mut rng);
        (ov, tables, rng)
    }

    #[test]
    fn cached_agrees_with_scan_and_hits_on_repeats() {
        let (ov, tables, mut rng) = setup(128, 3, 90);
        let mut router = Router::with_backend(RouteBackend::Cached);
        let points: Vec<_> = (0..32).map(|_| random_point(3, &mut rng)).collect();
        for round in 0..3 {
            for p in &points {
                for node in [NodeId(0), NodeId(5), NodeId(17)] {
                    let want = inscan_next_hop(&ov, &tables, node, p);
                    assert_eq!(router.next_hop(&ov, &tables, node, p), want);
                    let wantg = greedy_next_hop(&ov, node, p);
                    assert_eq!(router.greedy_hop(&ov, node, p), wantg);
                }
            }
            if round == 0 {
                assert_eq!(router.cache_stats().hits, 0, "cold cache cannot hit");
            }
        }
        let s = router.cache_stats();
        assert!(s.hits > s.misses, "repeats must hit: {s:?}");
    }

    #[test]
    fn join_invalidates_cached_hops() {
        let (mut ov, tables, mut rng) = setup(64, 2, 91);
        let mut router = Router::with_backend(RouteBackend::Cached);
        let p = random_point(2, &mut rng);
        let before = router.next_hop(&ov, &tables, NodeId(0), &p);
        assert_eq!(before, router.next_hop(&ov, &tables, NodeId(0), &p));
        let hits0 = router.cache_stats().hits;
        assert!(hits0 > 0);
        ov.join(NodeId(64), &random_point(2, &mut rng));
        // Same lookup after the epoch bump must recompute (a miss), and
        // still agree with the scan against the *new* structure.
        let after = router.next_hop(&ov, &tables, NodeId(0), &p);
        assert_eq!(after, inscan_next_hop(&ov, &tables, NodeId(0), &p));
        assert_eq!(router.cache_stats().hits, hits0);
    }

    #[test]
    fn table_refresh_invalidates_only_that_node() {
        let (ov, mut tables, mut rng) = setup(64, 2, 92);
        let mut router = Router::with_backend(RouteBackend::Cached);
        let p = random_point(2, &mut rng);
        router.next_hop(&ov, &tables, NodeId(1), &p);
        router.next_hop(&ov, &tables, NodeId(2), &p);
        tables.refresh_node(NodeId(1), &ov, &mut rng);
        let misses0 = router.cache_stats().misses;
        // Node 1 recomputes; node 2 still hits.
        assert_eq!(
            router.next_hop(&ov, &tables, NodeId(1), &p),
            inscan_next_hop(&ov, &tables, NodeId(1), &p)
        );
        assert_eq!(router.cache_stats().misses, misses0 + 1);
        router.next_hop(&ov, &tables, NodeId(2), &p);
        assert_eq!(router.cache_stats().misses, misses0 + 1);
    }

    #[test]
    fn env_selection_defaults_to_cached() {
        // Not a parallel-safe env test (process-global): only assert the
        // default when the variable is absent.
        if soc_types::knobs::raw("SOC_ROUTE").is_none() {
            assert_eq!(RouteBackend::from_env(), RouteBackend::Cached);
        }
        assert_eq!(
            Router::with_backend(RouteBackend::Scan).backend(),
            RouteBackend::Scan
        );
    }
}
