//! Property test: the `SOC_ROUTE=cached` router is observationally
//! identical to the scan router on random op scripts — the same next hop
//! (finger step *and* greedy step) for every query, interleaved with
//! joins, leaves, finger-table refreshes and evictions (the events that
//! invalidate cached hops through the overlay/table epochs).
//!
//! Queries draw from a small pool of target points so the same
//! `(node, target)` pairs recur — the cached router must actually *hit*
//! (asserted below) and still agree after every structural change.
//!
//! Runs 256 cases minimum (`PROPTEST_CASES` can only raise it), matching
//! the acceptance bar set by the PR-2 queue rewrite and the PR-4 cache.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use soc_can::overlay::random_point;
use soc_can::{greedy_next_hop, CanOverlay};
use soc_inscan::{inscan_next_hop, IndexTables, RouteBackend, Router};
use soc_types::NodeId;

const DIM: usize = 3;
const START: usize = 48;
const MAX_NODES: usize = 96;
const POOL: usize = 12;

/// One scripted world operation, decoded from a generated tuple.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// A fresh id joins at an rng-drawn point.
    Join,
    /// The `pick`-th live node leaves (never drains the overlay).
    Leave { pick: usize },
    /// The `pick`-th live node rebuilds its finger table.
    Refresh { pick: usize },
    /// The `pick`-th live node is evicted from every finger table
    /// (stale-finger repair after departure).
    Evict { pick: usize },
    /// Route from the `pick`-th live node toward pool target `t`,
    /// comparing cached vs scan for both the finger and the greedy step.
    Query { pick: usize, t: usize },
}

fn decode(kind: u8, pick: usize, seed: u64) -> Op {
    match kind {
        0 => Op::Join,
        1 => Op::Leave { pick },
        2 => Op::Refresh { pick },
        3 => Op::Evict { pick },
        _ => Op::Query {
            pick,
            t: (seed % POOL as u64) as usize,
        },
    }
}

fn nth_live(ov: &CanOverlay, pick: usize) -> NodeId {
    let n = ov.len();
    ov.live_nodes().nth(pick % n).expect("non-empty overlay")
}

fn run_script(ops: &[(u8, u16, u64)]) -> Result<(), String> {
    let mut rng = SmallRng::seed_from_u64(0xD1CE);
    let mut ov = CanOverlay::bootstrap(DIM, START, MAX_NODES, &mut rng);
    let mut tables = IndexTables::new(DIM, START, MAX_NODES);
    tables.refresh_all(&ov, &mut rng);
    let mut cached = Router::with_backend(RouteBackend::Cached);
    let mut scan = Router::with_backend(RouteBackend::Scan);
    let pool: Vec<_> = (0..POOL).map(|_| random_point(DIM, &mut rng)).collect();
    // Ids not currently alive, usable for joins.
    let mut free: Vec<NodeId> = (START..MAX_NODES).map(|i| NodeId(i as u32)).collect();

    for &(kind, pick, seed) in ops {
        match decode(kind, pick as usize, seed) {
            Op::Join => {
                if let Some(id) = free.pop() {
                    ov.join(id, &random_point(DIM, &mut rng));
                    tables.refresh_node(id, &ov, &mut rng);
                }
            }
            Op::Leave { pick } => {
                if ov.len() > 2 {
                    let victim = nth_live(&ov, pick);
                    ov.leave(victim);
                    tables.clear_node(victim);
                    free.push(victim);
                }
            }
            Op::Refresh { pick } => {
                let node = nth_live(&ov, pick);
                tables.refresh_node(node, &ov, &mut rng);
            }
            Op::Evict { pick } => {
                let node = nth_live(&ov, pick);
                tables.evict_everywhere(node);
            }
            Op::Query { pick, t } => {
                let from = nth_live(&ov, pick);
                let target = &pool[t];
                let want = scan.next_hop(&ov, &tables, from, target);
                let got = cached.next_hop(&ov, &tables, from, target);
                if got != want {
                    return Err(format!(
                        "finger step diverged at {from} -> {target:?}: \
                         cached {got:?} vs scan {want:?}"
                    ));
                }
                // Lockstep against the raw functions too, so the scan
                // router itself cannot drift from the reference.
                if want != inscan_next_hop(&ov, &tables, from, target) {
                    return Err("scan router drifted from inscan_next_hop".into());
                }
                let wantg = greedy_next_hop(&ov, from, target);
                let gotg = cached.greedy_hop(&ov, from, target);
                if gotg != wantg {
                    return Err(format!(
                        "greedy step diverged at {from} -> {target:?}: \
                         cached {gotg:?} vs scan {wantg:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cached_router_matches_scan_under_churn(
        ops in prop::collection::vec((0u8..8, 0u16..512, 0u64..1_000_000), 1..150)
    ) {
        if let Err(e) = run_script(&ops) {
            prop_assert!(false, "{e}");
        }
    }
}

/// Deterministic torture case: query bursts against the same pool targets
/// between every kind of invalidation, heavy enough that the cache must
/// both hit (validating the memoization) and invalidate (validating the
/// epochs), independent of the generated scripts.
#[test]
fn churn_storm_stays_lockstep_and_hits() {
    let mut ops: Vec<(u8, u16, u64)> = Vec::new();
    for i in 0u64..400 {
        // Repeated same-target queries from a few senders...
        ops.push((7, (i % 5) as u16, i % 4));
        ops.push((7, (i % 3) as u16, (i + 1) % 4));
        // ...interleaved with churn and table maintenance.
        match i % 8 {
            0 => ops.push((0, 0, i)),               // join
            2 => ops.push((1, (i % 11) as u16, i)), // leave
            4 => ops.push((2, (i % 7) as u16, i)),  // refresh
            6 => ops.push((3, (i % 13) as u16, i)), // evict
            _ => {}
        }
    }
    run_script(&ops).unwrap();

    // The memoization must actually engage on this repeat-heavy script:
    // rebuild the same world and count hits through a fresh router.
    let mut rng = SmallRng::seed_from_u64(7);
    let ov = CanOverlay::bootstrap(DIM, START, MAX_NODES, &mut rng);
    let mut tables = IndexTables::new(DIM, START, MAX_NODES);
    tables.refresh_all(&ov, &mut rng);
    let mut router = Router::with_backend(RouteBackend::Cached);
    let pool: Vec<_> = (0..POOL).map(|_| random_point(DIM, &mut rng)).collect();
    for round in 0..3 {
        for p in &pool {
            for n in 0..8u32 {
                router.next_hop(&ov, &tables, NodeId(n), p);
            }
        }
        let s = router.cache_stats();
        if round > 0 {
            assert!(
                s.hits > 0,
                "stable world + repeated targets must hit: {s:?}"
            );
        }
    }
}
